//! Complex-double DFT counterparts of the NTT code paths.
//!
//! The paper's §IV–§VI contrast every NTT optimization with the equivalent
//! DFT implementation. To keep the *dataflow* bit-identical (same butterfly
//! count, same access pattern, same table layout — only the arithmetic and
//! element width differ) we implement the DFT with the exact same merged
//! "negacyclic" Cooley–Tukey structure: `psi = exp(-iπ/N)` plays the role
//! of the 2N-th root of unity and the twiddle table is stored bit-reversed.
//! This is a unitary transform with the same operation mix as a standard
//! FFT; a complex element is 16 bytes (vs the NTT's 8), and — the paper's
//! central observation — the twiddle table needs **no Shoup companions and
//! is shared across the whole batch**.

use std::ops::{Add, Mul, Neg, Sub};

/// A complex number with `f64` parts (the DFT element type).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from rectangular parts.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Zero.
    #[inline]
    pub fn zero() -> Self {
        Self { re: 0.0, im: 0.0 }
    }

    /// One.
    #[inline]
    pub fn one() -> Self {
        Self { re: 1.0, im: 0.0 }
    }

    /// `exp(i·theta)` on the unit circle.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

/// Bit-reversed twiddle table for the complex transform — the direct
/// analogue of [`crate::table::NttTable`] minus the Shoup companions.
#[derive(Debug, Clone)]
pub struct DftTable {
    n: usize,
    log_n: u32,
    /// `psi^{bitrev(i)}` with `psi = exp(-iπ/N)`.
    psi_rev: Vec<Complex>,
    /// `psi^{-bitrev(i)}`.
    ipsi_rev: Vec<Complex>,
}

impl DftTable {
    /// Build the table for an N-point transform.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two ≥ 2.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "N must be a power of two >= 2"
        );
        let log_n = n.trailing_zeros();
        let mut psi_rev = vec![Complex::zero(); n];
        let mut ipsi_rev = vec![Complex::zero(); n];
        for (i, (f, b)) in psi_rev.iter_mut().zip(ipsi_rev.iter_mut()).enumerate() {
            let r = crate::bitrev::bit_reverse(i, log_n) as f64;
            let theta = -std::f64::consts::PI * r / n as f64;
            *f = Complex::from_angle(theta);
            *b = Complex::from_angle(-theta);
        }
        Self {
            n,
            log_n,
            psi_rev,
            ipsi_rev,
        }
    }

    /// Transform size.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// `log2 N`.
    #[inline]
    pub fn log_n(&self) -> u32 {
        self.log_n
    }

    /// Forward twiddle at bit-reversed index `i`.
    #[inline]
    pub fn forward(&self, i: usize) -> Complex {
        self.psi_rev[i]
    }

    /// Inverse twiddle at bit-reversed index `i`.
    #[inline]
    pub fn inverse(&self, i: usize) -> Complex {
        self.ipsi_rev[i]
    }

    /// Table bytes: `N` complex entries, 16 B each, **no companions** and
    /// shared across any batch size — the paper's key DFT-vs-NTT contrast.
    pub fn forward_table_bytes(&self) -> usize {
        self.n * 16
    }
}

/// Forward complex transform, natural-order input, bit-reversed output —
/// the same loop as [`crate::ct::ntt`].
pub fn dft(a: &mut [Complex], table: &DftTable) {
    assert_eq!(a.len(), table.n(), "input length must equal table N");
    let n = a.len();
    let mut t = n / 2;
    let mut m = 1;
    while m < n {
        for i in 0..m {
            let w = table.forward(m + i);
            let j1 = 2 * i * t;
            for j in j1..j1 + t {
                let u = a[j];
                let v = a[j + t] * w;
                a[j] = u + v;
                a[j + t] = u - v;
            }
        }
        m *= 2;
        t /= 2;
    }
}

/// Inverse complex transform, bit-reversed input, natural-order output,
/// with the `1/N` normalization folded in — same loop as
/// [`crate::ct::intt`].
pub fn idft(a: &mut [Complex], table: &DftTable) {
    assert_eq!(a.len(), table.n(), "input length must equal table N");
    let n = a.len();
    let mut t = 1;
    let mut m = n;
    while m > 1 {
        let h = m / 2;
        let mut j1 = 0;
        for i in 0..h {
            let w = table.inverse(h + i);
            for j in j1..j1 + t {
                let u = a[j];
                let v = a[j + t];
                a[j] = u + v;
                a[j + t] = (u - v) * w;
            }
            j1 += 2 * t;
        }
        t *= 2;
        m = h;
    }
    let scale = 1.0 / n as f64;
    for x in a.iter_mut() {
        *x = x.scale(scale);
    }
}

/// Block (high-radix) complex NTT-style transform — the analogue of
/// [`crate::radix::block_ntt`] with the same `tw_base` algebra.
pub fn block_dft(block: &mut [Complex], table: &DftTable, tw_base: usize) {
    let r = block.len();
    assert!(r.is_power_of_two(), "block length must be a power of two");
    let mut m_loc = 1;
    let mut t_loc = r / 2;
    while m_loc < r {
        for i_loc in 0..m_loc {
            let w = table.forward(m_loc * tw_base + i_loc);
            let j1 = 2 * i_loc * t_loc;
            for j in j1..j1 + t_loc {
                let u = block[j];
                let v = block[j + t_loc] * w;
                block[j] = u + v;
                block[j + t_loc] = u - v;
            }
        }
        m_loc *= 2;
        t_loc /= 2;
    }
}

/// Naive O(N²) reference: `X_k = Σ_n a_n psi^{n(2k+1)}`, natural order.
pub fn naive_dft(a: &[Complex]) -> Vec<Complex> {
    let n = a.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::zero();
            for (i, &x) in a.iter().enumerate() {
                let theta = -std::f64::consts::PI * (i as f64) * (2.0 * k as f64 + 1.0) / n as f64;
                acc = acc + x * Complex::from_angle(theta);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrev::bit_reversed;

    fn sample(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect()
    }

    fn close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() < tol, "mismatch at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn complex_algebra() {
        let i = Complex::new(0.0, 1.0);
        assert_eq!(i * i, Complex::new(-1.0, 0.0));
        assert_eq!(i.conj(), -i);
        assert!((Complex::from_angle(std::f64::consts::PI).re + 1.0).abs() < 1e-15);
    }

    #[test]
    fn roundtrip() {
        for n in [2usize, 8, 64, 1024] {
            let t = DftTable::new(n);
            let a = sample(n);
            let mut b = a.clone();
            dft(&mut b, &t);
            idft(&mut b, &t);
            close(&a, &b, 1e-9);
        }
    }

    #[test]
    fn matches_naive_with_bitreversal() {
        let n = 32;
        let t = DftTable::new(n);
        let a = sample(n);
        let mut fast = a.clone();
        dft(&mut fast, &t);
        close(&bit_reversed(&fast), &naive_dft(&a), 1e-10);
    }

    #[test]
    fn block_dft_with_base_one_is_full_dft() {
        let n = 64;
        let t = DftTable::new(n);
        let a = sample(n);
        let mut blocked = a.clone();
        block_dft(&mut blocked, &t, 1);
        let mut reference = a;
        dft(&mut reference, &t);
        close(&blocked, &reference, 1e-12);
    }

    #[test]
    fn transform_preserves_energy_up_to_n() {
        // For this unitary-up-to-scale transform: ||X||² = N·||x||².
        let n = 128;
        let t = DftTable::new(n);
        let a = sample(n);
        let mut x = a.clone();
        dft(&mut x, &t);
        let ein: f64 = a.iter().map(|c| c.abs() * c.abs()).sum();
        let eout: f64 = x.iter().map(|c| c.abs() * c.abs()).sum();
        assert!((eout / ein - n as f64).abs() / (n as f64) < 1e-12);
    }

    #[test]
    fn table_bytes_independent_of_batch() {
        let t = DftTable::new(1 << 14);
        assert_eq!(t.forward_table_bytes(), (1 << 14) * 16);
    }
}
