//! Reference transforms and polynomial rings for NTT-based HE.
//!
//! This crate is the *algorithmic* layer of the reproduction of
//! *"Accelerating NTT for Bootstrappable HE on GPUs"* (IISWC 2020): scalar,
//! known-correct implementations of everything the paper's GPU kernels
//! compute, plus the precomputed-table machinery whose size drives the
//! paper's memory-bandwidth story.
//!
//! * [`bitrev`] — bit-reversal permutation helpers.
//! * [`naive`] — O(N²) NTT/iNTT and negacyclic convolution (the oracle).
//! * [`table`] — per-prime twiddle tables with Shoup companions
//!   (bit-reversed layout), including byte accounting (paper Fig. 8).
//! * [`ct`] — in-place Cooley–Tukey forward NTT (paper Algorithm 1) and
//!   Gentleman–Sande inverse, with merged negacyclic twiddles; strict and
//!   Harvey-lazy variants.
//! * [`engine`] — the fused lazy-reduction execution engine:
//!   [`NttExecutor`] with a reusable [`engine::Workspace`], batched
//!   residue-parallel RNS transforms, and the `NTT_WARP_THREADS` thread
//!   policy.
//! * [`backend`] — the pluggable execution layer: the [`NttBackend`]
//!   trait (batched RNS ops over [`LimbBatch`] views plus device-resident
//!   ops over opaque [`backend::DeviceBuf`] handles), FFTW-style
//!   [`RingPlan`] handles with plan-time Montgomery/Barrett pointwise
//!   selection, the [`CpuBackend`] reference implementation (identity
//!   device memory), and the backend-generic, residency-aware
//!   [`Evaluator`].
//! * [`calibration`] — the persisted per-host calibration file that makes
//!   plan-time strategy choices reproducible across runs.
//! * [`stockham`] — out-of-place self-sorting Stockham NTT (paper
//!   Algorithm 3).
//! * [`radix`] — register-style small-block NTTs (radix 2..2048) used by
//!   the high-radix implementations.
//! * [`ot`] — on-the-fly twiddling (paper §VII): base-B factorization of
//!   twiddles so late stages trade table loads for extra modmuls.
//! * [`dft`] — complex-double DFT counterparts for the NTT-vs-DFT studies.
//! * [`rns`] — residue number system over an NTT-friendly prime basis and
//!   CRT reconstruction.
//! * [`params`] — the paper's bootstrappable HE parameter presets.
//! * [`poly`] — negacyclic rings `Z_p[X]/(X^N+1)`, RNS rings and
//!   polynomials (the ciphertext substrate).
//!
//! # Example: negacyclic multiplication via NTT
//!
//! ```
//! use ntt_core::{NegacyclicRing, Polynomial};
//!
//! let ring = NegacyclicRing::new_with_bits(8, 60)?;
//! // (1 + x)(1 + x) = 1 + 2x + x^2
//! let a = Polynomial::from_coeffs(vec![1, 1], 8);
//! let c = ring.multiply(&a, &a);
//! assert_eq!(&c.coeffs()[..3], &[1, 2, 1]);
//! // x^7 * x^7 = x^14 = -x^6 in the negacyclic ring
//! let x7 = Polynomial::monomial(7, 1, 8);
//! let d = ring.multiply(&x7, &x7);
//! assert_eq!(d.coeffs()[6], ring.modulus() - 1);
//! # Ok::<(), ntt_core::RingError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod bitrev;
pub mod calibration;
pub mod ct;
pub mod dft;
pub mod engine;
pub mod hier;
pub mod naive;
pub mod ot;
pub mod params;
pub mod poly;
pub mod radix;
pub mod rns;
pub mod stockham;
pub mod table;

pub use backend::{
    BackendError, CpuBackend, DeviceBuf, DeviceMemory, Evaluator, FaultClass, LimbBatch,
    NttBackend, PointwiseStrategy, RingPlan, SharedDeviceMemory, TransferStats,
};
pub use ct::{intt, ntt};
pub use engine::{NttExecutor, ThreadPolicy};
pub use hier::{HierConfig, HierPlan};
pub use ot::OtTable;
pub use params::HeParams;
pub use poly::{NegacyclicRing, Polynomial, Residency, RingError, RnsPoly, RnsRing};
pub use rns::RnsBasis;
pub use table::NttTable;
