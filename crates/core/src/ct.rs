//! In-place Cooley–Tukey NTT (paper Algorithm 1) and Gentleman–Sande iNTT.
//!
//! The forward transform takes natural-order input and produces
//! **bit-reversed** output; the inverse takes bit-reversed input and
//! produces natural-order output. HE pipelines never reorder: element-wise
//! products in the NTT domain commute with the permutation, which is the
//! paper's argument for preferring Cooley–Tukey over Stockham (§IV).
//!
//! Two variants are provided:
//!
//! * [`ntt`]/[`intt`] — strict: every intermediate value is `< p`.
//! * [`ntt_lazy`]/[`intt_lazy`] — Harvey lazy reduction: intermediates live
//!   in `[0, 4p)` (requires `p < 2^62`), exactly the `0 ≤ A,B < 4p`
//!   precondition of the paper's Algorithm 2. One final pass reduces.

use crate::table::NttTable;
use ntt_math::modops::{add_mod, sub_mod};
use ntt_math::shoup::{mul_shoup, mul_shoup_lazy, MAX_LAZY_MODULUS};
use ntt_math::Barrett;

/// Forward negacyclic NTT, strict reduction. Natural-order input,
/// bit-reversed output.
///
/// # Panics
///
/// Panics if `a.len() != table.n()`.
///
/// # Example
///
/// ```
/// use ntt_core::{ct, NttTable};
/// let t = NttTable::new_with_bits(16, 60)?;
/// let mut a: Vec<u64> = (0..16).collect();
/// let orig = a.clone();
/// ct::ntt(&mut a, &t);
/// ct::intt(&mut a, &t);
/// assert_eq!(a, orig);
/// # Ok::<(), ntt_math::root::RootError>(())
/// ```
pub fn ntt(a: &mut [u64], table: &NttTable) {
    assert_eq!(a.len(), table.n(), "input length must equal table N");
    let p = table.modulus();
    let n = a.len();
    let wv = table.forward_values();
    let wc = table.forward_companions();
    let mut t = n / 2;
    let mut m = 1;
    while m < n {
        // One bounds check per stage: slice the (value, companion) pair
        // range `m..2m` once and zip it against the butterfly blocks.
        let stage = wv[m..2 * m].iter().zip(&wc[m..2 * m]);
        for (block, (&w, &wsh)) in a.chunks_exact_mut(2 * t).zip(stage) {
            let (lo, hi) = block.split_at_mut(t);
            for (x, y) in lo.iter_mut().zip(hi) {
                let u = *x;
                let v = mul_shoup(*y, w, wsh, p);
                *x = add_mod(u, v, p);
                *y = sub_mod(u, v, p);
            }
        }
        m *= 2;
        t /= 2;
    }
}

/// Inverse negacyclic NTT, strict reduction. Bit-reversed input,
/// natural-order output; the final stage folds in `N^{-1}`.
///
/// # Panics
///
/// Panics if `a.len() != table.n()`.
pub fn intt(a: &mut [u64], table: &NttTable) {
    assert_eq!(a.len(), table.n(), "input length must equal table N");
    let p = table.modulus();
    let n = a.len();
    let wv = table.inverse_values();
    let wc = table.inverse_companions();
    let mut t = 1;
    let mut m = n;
    while m > 1 {
        let h = m / 2;
        let stage = wv[h..2 * h].iter().zip(&wc[h..2 * h]);
        for (block, (&w, &wsh)) in a.chunks_exact_mut(2 * t).zip(stage) {
            let (lo, hi) = block.split_at_mut(t);
            for (x, y) in lo.iter_mut().zip(hi) {
                let u = *x;
                let v = *y;
                *x = add_mod(u, v, p);
                *y = mul_shoup(sub_mod(u, v, p), w, wsh, p);
            }
        }
        t *= 2;
        m = h;
    }
    let n_inv = table.n_inv();
    for x in a.iter_mut() {
        *x = n_inv.mul(*x);
    }
}

/// Forward NTT with Harvey lazy reduction: inputs must be `< 4p`, outputs
/// are `< 4p`. Call [`reduce_from_lazy`] (or compare mod p) afterwards.
///
/// This is the butterfly the paper's Algorithm 2 specifies
/// (`0 ≤ A, B < 4p`).
///
/// # Panics
///
/// Panics if the modulus is ≥ 2^62 (lazy bound) or on length mismatch.
pub fn ntt_lazy(a: &mut [u64], table: &NttTable) {
    assert_eq!(a.len(), table.n(), "input length must equal table N");
    let p = table.modulus();
    assert!(p < MAX_LAZY_MODULUS, "lazy NTT requires p < 2^62");
    let two_p = 2 * p;
    let n = a.len();
    let wv = table.forward_values();
    let wc = table.forward_companions();
    let mut t = n / 2;
    let mut m = 1;
    while m < n {
        let stage = wv[m..2 * m].iter().zip(&wc[m..2 * m]);
        for (block, (&w, &wsh)) in a.chunks_exact_mut(2 * t).zip(stage) {
            let (lo, hi) = block.split_at_mut(t);
            for (x, y) in lo.iter_mut().zip(hi) {
                // Harvey CT butterfly: A' = A + wB, B' = A - wB, kept in [0, 4p).
                let mut u = *x;
                if u >= two_p {
                    u -= two_p;
                }
                let v = mul_shoup_lazy(*y, w, wsh, p); // in [0, 2p)
                *x = u + v;
                *y = u + two_p - v;
            }
        }
        m *= 2;
        t /= 2;
    }
}

/// Inverse NTT with lazy reduction; outputs fully reduced (`< p`) because
/// the final `N^{-1}` multiplication uses the strict Shoup product.
///
/// # Panics
///
/// Panics if the modulus is ≥ 2^62 or on length mismatch.
pub fn intt_lazy(a: &mut [u64], table: &NttTable) {
    assert_eq!(a.len(), table.n(), "input length must equal table N");
    let p = table.modulus();
    assert!(p < MAX_LAZY_MODULUS, "lazy iNTT requires p < 2^62");
    let two_p = 2 * p;
    // The Gentleman-Sande lazy butterfly preserves the [0, 2p) invariant;
    // fold possible [0, 4p) inputs (e.g. straight out of `ntt_lazy`) once.
    for x in a.iter_mut() {
        if *x >= two_p {
            *x -= two_p;
        }
    }
    let n = a.len();
    let wv = table.inverse_values();
    let wc = table.inverse_companions();
    let mut t = 1;
    let mut m = n;
    while m > 1 {
        let h = m / 2;
        let stage = wv[h..2 * h].iter().zip(&wc[h..2 * h]);
        for (block, (&w, &wsh)) in a.chunks_exact_mut(2 * t).zip(stage) {
            let (lo, hi) = block.split_at_mut(t);
            for (x, y) in lo.iter_mut().zip(hi) {
                // Harvey GS butterfly: inputs < 2p, outputs < 2p.
                let u = *x;
                let v = *y;
                let mut s = u + v; // < 4p
                if s >= two_p {
                    s -= two_p;
                }
                *x = s;
                *y = mul_shoup_lazy(u + two_p - v, w, wsh, p);
            }
        }
        t *= 2;
        m = h;
    }
    let n_inv = table.n_inv();
    for x in a.iter_mut() {
        let mut v = *x;
        if v >= two_p {
            v -= two_p;
        }
        *x = n_inv.mul(v);
    }
}

/// Reduce a lazy-domain array (`< 4p`) to canonical residues (`< p`).
pub fn reduce_from_lazy(a: &mut [u64], p: u64) {
    let two_p = 2 * p;
    for x in a.iter_mut() {
        let mut v = *x;
        if v >= two_p {
            v -= two_p;
        }
        if v >= p {
            v -= p;
        }
        *x = v;
    }
}

/// Element-wise product in the NTT domain: `c[i] = a[i]·b[i] mod p`.
///
/// Operands must be canonical (`< p`) — enforced by a debug assertion in
/// the Barrett product; lazy-domain values belong in
/// [`pointwise_assign_lazy`]. Allocates the result; hot paths should
/// prefer [`pointwise_assign`].
///
/// # Panics
///
/// Panics on length mismatch.
pub fn pointwise(a: &[u64], b: &[u64], p: u64) -> Vec<u64> {
    let mut c = a.to_vec();
    pointwise_assign(&mut c, b, p);
    c
}

/// In-place element-wise product: `a[i] = a[i]·b[i] mod p`, fully reduced.
///
/// Operands must be canonical (`< p`) — enforced by a debug assertion in
/// the Barrett product. Reduction uses a per-call Barrett reciprocal —
/// two multiplies per element, no division.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn pointwise_assign(a: &mut [u64], b: &[u64], p: u64) {
    assert_eq!(a.len(), b.len(), "operand lengths must match");
    let br = Barrett::new(p);
    for (x, &y) in a.iter_mut().zip(b) {
        *x = br.mul(*x, y);
    }
}

/// In-place **lazy-domain** element-wise product: operands may be anywhere
/// in `[0, 4p)` (e.g. straight out of [`ntt_lazy`]); results land in
/// `[0, 2p)`, ready for [`intt_lazy`] with no intermediate reduction pass.
///
/// # Panics
///
/// Panics on length mismatch or if `p >= 2^62` (lazy bound).
pub fn pointwise_assign_lazy(a: &mut [u64], b: &[u64], p: u64) {
    assert_eq!(a.len(), b.len(), "operand lengths must match");
    assert!(p < MAX_LAZY_MODULUS, "lazy pointwise requires p < 2^62");
    let br = Barrett::new(p);
    let two_p = 2 * p;
    for (x, &y) in a.iter_mut().zip(b) {
        let mut u = *x;
        if u >= two_p {
            u -= two_p;
        }
        let mut v = y;
        if v >= two_p {
            v -= two_p;
        }
        *x = br.mul_lazy(u, v);
    }
}

/// Out-of-place lazy-domain element-wise product into `out` (same contract
/// as [`pointwise_assign_lazy`]): `out[i] = a[i]·b[i] mod p` in `[0, 2p)`.
///
/// # Panics
///
/// Panics on length mismatch or if `p >= 2^62`.
pub fn pointwise_lazy_into(out: &mut [u64], a: &[u64], b: &[u64], p: u64) {
    assert_eq!(a.len(), b.len(), "operand lengths must match");
    assert_eq!(out.len(), a.len(), "output length must match");
    assert!(p < MAX_LAZY_MODULUS, "lazy pointwise requires p < 2^62");
    let br = Barrett::new(p);
    let two_p = 2 * p;
    for (o, (&x, &y)) in out.iter_mut().zip(a.iter().zip(b)) {
        let mut u = x;
        if u >= two_p {
            u -= two_p;
        }
        let mut v = y;
        if v >= two_p {
            v -= two_p;
        }
        *o = br.mul_lazy(u, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrev::bit_reversed;
    use crate::naive::{naive_ntt, negacyclic_convolution};

    fn table(n: usize) -> NttTable {
        NttTable::new_with_bits(n, 60).unwrap()
    }

    #[test]
    fn matches_naive_with_bitreversal() {
        for n in [4usize, 8, 32, 128] {
            let t = table(n);
            let a: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9E37) % t.modulus())
                .collect();
            let mut fast = a.clone();
            ntt(&mut fast, &t);
            let slow = naive_ntt(&a, t.psi(), t.modulus());
            assert_eq!(bit_reversed(&fast), slow, "n = {n}");
        }
    }

    #[test]
    fn roundtrip_many_sizes() {
        for log_n in 1..=12 {
            let n = 1usize << log_n;
            let t = table(n);
            let a: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 3) % t.modulus()).collect();
            let mut b = a.clone();
            ntt(&mut b, &t);
            intt(&mut b, &t);
            assert_eq!(a, b, "log_n = {log_n}");
        }
    }

    #[test]
    fn lazy_matches_strict() {
        let n = 256;
        let t = table(n);
        let a: Vec<u64> = (0..n as u64).map(|i| (i * i + 13) % t.modulus()).collect();
        let mut strict = a.clone();
        ntt(&mut strict, &t);
        let mut lazy = a.clone();
        ntt_lazy(&mut lazy, &t);
        reduce_from_lazy(&mut lazy, t.modulus());
        assert_eq!(strict, lazy);
    }

    #[test]
    fn lazy_roundtrip() {
        let n = 512;
        let t = table(n);
        let a: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 5) % t.modulus()).collect();
        let mut b = a.clone();
        ntt_lazy(&mut b, &t);
        intt_lazy(&mut b, &t);
        assert_eq!(a, b);
    }

    #[test]
    fn lazy_intermediates_stay_below_4p() {
        let n = 128;
        let t = table(n);
        let p = t.modulus();
        // Worst-case inputs: all p-1.
        let mut a = vec![p - 1; n];
        ntt_lazy(&mut a, &t);
        assert!(a.iter().all(|&v| v < 4 * p), "lazy bound violated");
    }

    #[test]
    fn convolution_via_ntt_matches_naive() {
        let n = 64;
        let t = table(n);
        let p = t.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| i + 1).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| 2 * i + 1).collect();
        let mut na = a.clone();
        let mut nb = b.clone();
        ntt(&mut na, &t);
        ntt(&mut nb, &t);
        // Bit-reversed order on both sides: pointwise product commutes.
        let mut prod = pointwise(&na, &nb, p);
        intt(&mut prod, &t);
        assert_eq!(prod, negacyclic_convolution(&a, &b, p));
    }

    #[test]
    fn ntt_is_linear() {
        let n = 32;
        let t = table(n);
        let p = t.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| i * 3).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| i * i % p).collect();
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| (x + y) % p).collect();
        let (mut na, mut nb, mut ns) = (a.clone(), b.clone(), sum.clone());
        ntt(&mut na, &t);
        ntt(&mut nb, &t);
        ntt(&mut ns, &t);
        for i in 0..n {
            assert_eq!(ns[i], (na[i] + nb[i]) % p);
        }
    }

    #[test]
    fn pointwise_assign_matches_allocating_pointwise() {
        let t = table(64);
        let p = t.modulus();
        let a: Vec<u64> = (0..64u64).map(|i| (i * 0x9E37 + 11) % p).collect();
        let b: Vec<u64> = (0..64u64).map(|i| (i * i + 5) % p).collect();
        let expect: Vec<u64> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| ntt_math::mul_mod(x, y, p))
            .collect();
        assert_eq!(pointwise(&a, &b, p), expect);
        let mut c = a.clone();
        pointwise_assign(&mut c, &b, p);
        assert_eq!(c, expect);
    }

    #[test]
    fn lazy_pointwise_congruent_and_below_2p() {
        let t = table(128);
        let p = t.modulus();
        // Lazy-domain operands anywhere in [0, 4p).
        let a: Vec<u64> = (0..128u64).map(|i| (i * 0x1234_5677) % (4 * p)).collect();
        let b: Vec<u64> = (0..128u64).map(|i| (i * i * 31 + 7) % (4 * p)).collect();
        let mut c = a.clone();
        pointwise_assign_lazy(&mut c, &b, p);
        let mut d = vec![0u64; 128];
        pointwise_lazy_into(&mut d, &a, &b, p);
        for i in 0..128 {
            assert!(c[i] < 2 * p);
            assert_eq!(c[i], d[i]);
            assert_eq!(c[i] % p, ntt_math::mul_mod(a[i] % p, b[i] % p, p));
        }
    }

    #[test]
    #[should_panic(expected = "length must equal")]
    fn rejects_length_mismatch() {
        let t = table(16);
        let mut a = vec![0u64; 8];
        ntt(&mut a, &t);
    }
}
