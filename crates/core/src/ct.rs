//! In-place Cooley–Tukey NTT (paper Algorithm 1) and Gentleman–Sande iNTT.
//!
//! The forward transform takes natural-order input and produces
//! **bit-reversed** output; the inverse takes bit-reversed input and
//! produces natural-order output. HE pipelines never reorder: element-wise
//! products in the NTT domain commute with the permutation, which is the
//! paper's argument for preferring Cooley–Tukey over Stockham (§IV).
//!
//! Two variants are provided:
//!
//! * [`ntt`]/[`intt`] — strict: every intermediate value is `< p`.
//! * [`ntt_lazy`]/[`intt_lazy`] — Harvey lazy reduction: intermediates live
//!   in `[0, 4p)` (requires `p < 2^62`), exactly the `0 ≤ A,B < 4p`
//!   precondition of the paper's Algorithm 2. One final pass reduces.

use crate::table::NttTable;
use ntt_math::modops::{add_mod, sub_mod};
use ntt_math::shoup::MAX_LAZY_MODULUS;

/// Forward negacyclic NTT, strict reduction. Natural-order input,
/// bit-reversed output.
///
/// # Panics
///
/// Panics if `a.len() != table.n()`.
///
/// # Example
///
/// ```
/// use ntt_core::{ct, NttTable};
/// let t = NttTable::new_with_bits(16, 60)?;
/// let mut a: Vec<u64> = (0..16).collect();
/// let orig = a.clone();
/// ct::ntt(&mut a, &t);
/// ct::intt(&mut a, &t);
/// assert_eq!(a, orig);
/// # Ok::<(), ntt_math::root::RootError>(())
/// ```
pub fn ntt(a: &mut [u64], table: &NttTable) {
    assert_eq!(a.len(), table.n(), "input length must equal table N");
    let p = table.modulus();
    let n = a.len();
    let mut t = n / 2;
    let mut m = 1;
    while m < n {
        for i in 0..m {
            let w = table.forward(m + i);
            let j1 = 2 * i * t;
            for j in j1..j1 + t {
                let u = a[j];
                let v = w.mul(a[j + t]);
                a[j] = add_mod(u, v, p);
                a[j + t] = sub_mod(u, v, p);
            }
        }
        m *= 2;
        t /= 2;
    }
}

/// Inverse negacyclic NTT, strict reduction. Bit-reversed input,
/// natural-order output; the final stage folds in `N^{-1}`.
///
/// # Panics
///
/// Panics if `a.len() != table.n()`.
pub fn intt(a: &mut [u64], table: &NttTable) {
    assert_eq!(a.len(), table.n(), "input length must equal table N");
    let p = table.modulus();
    let n = a.len();
    let mut t = 1;
    let mut m = n;
    while m > 1 {
        let h = m / 2;
        let mut j1 = 0;
        for i in 0..h {
            let w = table.inverse(h + i);
            for j in j1..j1 + t {
                let u = a[j];
                let v = a[j + t];
                a[j] = add_mod(u, v, p);
                a[j + t] = w.mul(sub_mod(u, v, p));
            }
            j1 += 2 * t;
        }
        t *= 2;
        m = h;
    }
    let n_inv = table.n_inv();
    for x in a.iter_mut() {
        *x = n_inv.mul(*x);
    }
}

/// Forward NTT with Harvey lazy reduction: inputs must be `< 4p`, outputs
/// are `< 4p`. Call [`reduce_from_lazy`] (or compare mod p) afterwards.
///
/// This is the butterfly the paper's Algorithm 2 specifies
/// (`0 ≤ A, B < 4p`).
///
/// # Panics
///
/// Panics if the modulus is ≥ 2^62 (lazy bound) or on length mismatch.
pub fn ntt_lazy(a: &mut [u64], table: &NttTable) {
    assert_eq!(a.len(), table.n(), "input length must equal table N");
    let p = table.modulus();
    assert!(p < MAX_LAZY_MODULUS, "lazy NTT requires p < 2^62");
    let two_p = 2 * p;
    let n = a.len();
    let mut t = n / 2;
    let mut m = 1;
    while m < n {
        for i in 0..m {
            let w = table.forward(m + i);
            let j1 = 2 * i * t;
            for j in j1..j1 + t {
                // Harvey CT butterfly: A' = A + wB, B' = A - wB, kept in [0, 4p).
                let mut u = a[j];
                if u >= two_p {
                    u -= two_p;
                }
                let v = w.mul_lazy(a[j + t]); // in [0, 2p)
                a[j] = u + v;
                a[j + t] = u + two_p - v;
            }
        }
        m *= 2;
        t /= 2;
    }
}

/// Inverse NTT with lazy reduction; outputs fully reduced (`< p`) because
/// the final `N^{-1}` multiplication uses the strict Shoup product.
///
/// # Panics
///
/// Panics if the modulus is ≥ 2^62 or on length mismatch.
pub fn intt_lazy(a: &mut [u64], table: &NttTable) {
    assert_eq!(a.len(), table.n(), "input length must equal table N");
    let p = table.modulus();
    assert!(p < MAX_LAZY_MODULUS, "lazy iNTT requires p < 2^62");
    let two_p = 2 * p;
    // The Gentleman-Sande lazy butterfly preserves the [0, 2p) invariant;
    // fold possible [0, 4p) inputs (e.g. straight out of `ntt_lazy`) once.
    for x in a.iter_mut() {
        if *x >= two_p {
            *x -= two_p;
        }
    }
    let n = a.len();
    let mut t = 1;
    let mut m = n;
    while m > 1 {
        let h = m / 2;
        let mut j1 = 0;
        for i in 0..h {
            let w = table.inverse(h + i);
            for j in j1..j1 + t {
                // Harvey GS butterfly: inputs < 2p, outputs < 2p.
                let u = a[j];
                let v = a[j + t];
                let mut s = u + v; // < 4p
                if s >= two_p {
                    s -= two_p;
                }
                a[j] = s;
                a[j + t] = w.mul_lazy(u + two_p - v);
            }
            j1 += 2 * t;
        }
        t *= 2;
        m = h;
    }
    let n_inv = table.n_inv();
    for x in a.iter_mut() {
        let mut v = *x;
        if v >= two_p {
            v -= two_p;
        }
        *x = n_inv.mul(v);
    }
}

/// Reduce a lazy-domain array (`< 4p`) to canonical residues (`< p`).
pub fn reduce_from_lazy(a: &mut [u64], p: u64) {
    let two_p = 2 * p;
    for x in a.iter_mut() {
        let mut v = *x;
        if v >= two_p {
            v -= two_p;
        }
        if v >= p {
            v -= p;
        }
        *x = v;
    }
}

/// Element-wise product in the NTT domain: `c[i] = a[i]·b[i] mod p`.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn pointwise(a: &[u64], b: &[u64], p: u64) -> Vec<u64> {
    assert_eq!(a.len(), b.len(), "operand lengths must match");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ntt_math::mul_mod(x, y, p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrev::bit_reversed;
    use crate::naive::{naive_ntt, negacyclic_convolution};

    fn table(n: usize) -> NttTable {
        NttTable::new_with_bits(n, 60).unwrap()
    }

    #[test]
    fn matches_naive_with_bitreversal() {
        for n in [4usize, 8, 32, 128] {
            let t = table(n);
            let a: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9E37) % t.modulus())
                .collect();
            let mut fast = a.clone();
            ntt(&mut fast, &t);
            let slow = naive_ntt(&a, t.psi(), t.modulus());
            assert_eq!(bit_reversed(&fast), slow, "n = {n}");
        }
    }

    #[test]
    fn roundtrip_many_sizes() {
        for log_n in 1..=12 {
            let n = 1usize << log_n;
            let t = table(n);
            let a: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 3) % t.modulus()).collect();
            let mut b = a.clone();
            ntt(&mut b, &t);
            intt(&mut b, &t);
            assert_eq!(a, b, "log_n = {log_n}");
        }
    }

    #[test]
    fn lazy_matches_strict() {
        let n = 256;
        let t = table(n);
        let a: Vec<u64> = (0..n as u64).map(|i| (i * i + 13) % t.modulus()).collect();
        let mut strict = a.clone();
        ntt(&mut strict, &t);
        let mut lazy = a.clone();
        ntt_lazy(&mut lazy, &t);
        reduce_from_lazy(&mut lazy, t.modulus());
        assert_eq!(strict, lazy);
    }

    #[test]
    fn lazy_roundtrip() {
        let n = 512;
        let t = table(n);
        let a: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 5) % t.modulus()).collect();
        let mut b = a.clone();
        ntt_lazy(&mut b, &t);
        intt_lazy(&mut b, &t);
        assert_eq!(a, b);
    }

    #[test]
    fn lazy_intermediates_stay_below_4p() {
        let n = 128;
        let t = table(n);
        let p = t.modulus();
        // Worst-case inputs: all p-1.
        let mut a = vec![p - 1; n];
        ntt_lazy(&mut a, &t);
        assert!(a.iter().all(|&v| v < 4 * p), "lazy bound violated");
    }

    #[test]
    fn convolution_via_ntt_matches_naive() {
        let n = 64;
        let t = table(n);
        let p = t.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| i + 1).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| 2 * i + 1).collect();
        let mut na = a.clone();
        let mut nb = b.clone();
        ntt(&mut na, &t);
        ntt(&mut nb, &t);
        // Bit-reversed order on both sides: pointwise product commutes.
        let mut prod = pointwise(&na, &nb, p);
        intt(&mut prod, &t);
        assert_eq!(prod, negacyclic_convolution(&a, &b, p));
    }

    #[test]
    fn ntt_is_linear() {
        let n = 32;
        let t = table(n);
        let p = t.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| i * 3).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| i * i % p).collect();
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| (x + y) % p).collect();
        let (mut na, mut nb, mut ns) = (a.clone(), b.clone(), sum.clone());
        ntt(&mut na, &t);
        ntt(&mut nb, &t);
        ntt(&mut ns, &t);
        for i in 0..n {
            assert_eq!(ns[i], (na[i] + nb[i]) % p);
        }
    }

    #[test]
    #[should_panic(expected = "length must equal")]
    fn rejects_length_mismatch() {
        let t = table(16);
        let mut a = vec![0u64; 8];
        ntt(&mut a, &t);
    }
}
