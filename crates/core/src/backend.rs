//! Pluggable execution backends and plan-based batched NTT execution.
//!
//! The paper's central claim is that one NTT workload — batches of RNS
//! limb transforms — runs on very different execution substrates (a scalar
//! CPU reference, GPU kernels at several radices). This module is the API
//! boundary that makes the substrate swappable:
//!
//! * [`NttBackend`] — the trait every execution substrate implements. Its
//!   vocabulary is *batched RNS operations* over [`LimbBatch`] views:
//!   [`NttBackend::forward_batch`], [`NttBackend::inverse_batch`],
//!   [`NttBackend::pointwise_batch`], and the fused
//!   [`NttBackend::multiply_batch`]. Backends never see individual
//!   polynomials — only flat buffers of limbs, the layout both the CPU
//!   engine and the simulated GPU kernels natively consume.
//! * [`RingPlan`] — an FFTW-style precomputed plan handle: the ring's
//!   twiddle tables (per-stage `(value, companion)` slice-pairs in
//!   bit-reversed order), workspace sizing, and a per-prime pointwise
//!   reduction strategy ([`PointwiseStrategy`], Montgomery vs. Barrett)
//!   chosen **once at plan time** from a micro-benchmark. Plans are cheap
//!   handles (`Arc` internals) and are memoized on the ring
//!   ([`crate::poly::RnsRing::plan`]).
//! * [`CpuBackend`] — the reference backend wrapping the fused
//!   lazy-reduction [`NttExecutor`] and its grow-only workspace.
//! * [`Evaluator`] — a backend-generic driver pairing a plan with a boxed
//!   backend; `he-lite` routes every context operation through one, so
//!   swapping the execution substrate is a one-line constructor change.
//!   (The simulated-GPU backend lives in the `ntt-gpu` crate as
//!   `SimBackend`, since the warp kernels live there.)
//!
//! # Example
//!
//! ```
//! use ntt_core::backend::{Evaluator, LimbBatch, NttBackend, RingPlan};
//! use ntt_core::{RnsPoly, RnsRing};
//!
//! let ring = RnsRing::new(16, ntt_math::ntt_primes(59, 32, 3))?;
//! let plan = RingPlan::new(&ring); // tables + strategies chosen here
//! let mut ev = Evaluator::cpu(&ring);
//!
//! let a = RnsPoly::from_i64_coeffs(&ring, &[1, 1]); // 1 + x
//! let c = ev.multiply(&a, &a); // one fused multiply_batch call
//! assert_eq!(c.coefficient_centered(&ring, 1), Some(2));
//! assert_eq!(plan.np(), 3);
//! # Ok::<(), ntt_core::RingError>(())
//! ```

use crate::engine::{NttExecutor, ThreadPolicy};
use crate::poly::{Representation, RnsPoly, RnsRing};
use crate::table::NttTable;
use ntt_math::mont::Montgomery;
use ntt_math::shoup::MAX_LAZY_MODULUS;
use ntt_math::Barrett;
use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

/// How the plan reduces pointwise products for one prime.
///
/// Both strategies return the exact canonical product `a·b mod p`, so the
/// choice never changes results — only throughput. Barrett costs five wide
/// multiplies per product; Montgomery (double-REDC on ordinary-form
/// operands, [`Montgomery::mul_plain`]) costs four but with a longer
/// dependency chain. Which one wins is host-specific, which is why the
/// plan decides from a measurement (see [`PointwiseStrategy::choose`]).
#[derive(Debug, Clone, Copy)]
pub enum PointwiseStrategy {
    /// Barrett reduction with a precomputed 128-bit reciprocal.
    Barrett(Barrett),
    /// Montgomery double-REDC on ordinary-form operands.
    Montgomery(Montgomery),
}

/// Strategy selection mode (the parsed `NTT_WARP_POINTWISE` value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrategyMode {
    /// Decide from the process-wide micro-benchmark (the default).
    #[default]
    Auto,
    /// Force Barrett everywhere.
    Barrett,
    /// Force Montgomery wherever its preconditions hold.
    Montgomery,
}

impl StrategyMode {
    /// Parse the `NTT_WARP_POINTWISE` syntax: `barrett`, `montgomery` /
    /// `mont`, anything else (or unset) → `Auto`.
    pub fn parse(s: &str) -> Self {
        match s.trim().to_ascii_lowercase().as_str() {
            "barrett" => StrategyMode::Barrett,
            "montgomery" | "mont" => StrategyMode::Montgomery,
            _ => StrategyMode::Auto,
        }
    }

    /// Mode from the `NTT_WARP_POINTWISE` environment variable. An
    /// unrecognized value falls back to `Auto` with a one-line warning on
    /// stderr (a typo must not silently turn a forced strategy into the
    /// calibrated one).
    pub fn from_env() -> Self {
        let Ok(s) = std::env::var("NTT_WARP_POINTWISE") else {
            return StrategyMode::Auto;
        };
        let mode = Self::parse(&s);
        let t = s.trim();
        if mode == StrategyMode::Auto && !t.is_empty() && !t.eq_ignore_ascii_case("auto") {
            eprintln!(
                "ntt-warp: unrecognized NTT_WARP_POINTWISE={t:?} \
                 (expected auto|barrett|montgomery), using auto"
            );
        }
        mode
    }
}

/// Time one pointwise pass (ns per element) for both strategies on a
/// scratch buffer mod `p`. Used by the plan-time auto selection; exposed
/// so benches and tests can inspect the measurement.
pub fn calibrate_pointwise(p: u64) -> (f64, f64) {
    const LEN: usize = 2048;
    const REPS: usize = 4;
    let a: Vec<u64> = (0..LEN as u64)
        .map(|i| i.wrapping_mul(0x9E37) % p)
        .collect();
    let b: Vec<u64> = (0..LEN as u64).map(|i| (i * i + 7) % p).collect();
    let time = |f: &dyn Fn() -> u64| {
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = std::time::Instant::now();
            // The sink must be consumed *before* the clock is read, or the
            // optimizer may move the pure loop past the measurement.
            std::hint::black_box(f());
            let dt = t0.elapsed().as_nanos() as f64 / LEN as f64;
            best = best.min(dt);
        }
        best
    };
    let br = Barrett::new(p);
    let barrett_ns = time(&|| {
        let mut acc = 0u64;
        for (&x, &y) in a.iter().zip(&b) {
            acc = acc.wrapping_add(br.mul(x, y));
        }
        acc
    });
    let m = Montgomery::new(p);
    let mont_ns = time(&|| {
        let mut acc = 0u64;
        for (&x, &y) in a.iter().zip(&b) {
            acc = acc.wrapping_add(m.mul_plain(x, y));
        }
        acc
    });
    (barrett_ns, mont_ns)
}

/// Process-wide calibration verdict per prime-size class (index 0: below
/// 40 bits, index 1: 40 bits and up), measured once on a representative
/// prime of that class.
fn montgomery_wins(bits: u32) -> bool {
    static WINS: [OnceLock<bool>; 2] = [OnceLock::new(), OnceLock::new()];
    let class = usize::from(bits >= 40);
    *WINS[class].get_or_init(|| {
        // Largest NTT-friendly primes of each class (2N = 2^12 keeps the
        // probe representative of real parameter sets).
        let probe = ntt_math::ntt_prime(if class == 0 { 31 } else { 61 }, 1 << 12)
            .expect("probe prime exists");
        let (barrett_ns, mont_ns) = calibrate_pointwise(probe);
        mont_ns < barrett_ns
    })
}

impl PointwiseStrategy {
    /// The prime this strategy reduces for.
    #[inline]
    pub fn modulus(&self) -> u64 {
        match self {
            PointwiseStrategy::Barrett(b) => b.modulus(),
            PointwiseStrategy::Montgomery(m) => m.modulus(),
        }
    }

    /// Short label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PointwiseStrategy::Barrett(_) => "barrett",
            PointwiseStrategy::Montgomery(_) => "montgomery",
        }
    }

    /// Canonical product `a·b mod p` for canonical operands.
    #[inline(always)]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        match self {
            PointwiseStrategy::Barrett(br) => br.mul(a, b),
            PointwiseStrategy::Montgomery(m) => m.mul_plain(a, b),
        }
    }

    /// Plan-time selection for one prime under an explicit mode.
    ///
    /// Montgomery requires an odd modulus and, for the fused lazy pipeline,
    /// `p < 2^62`; primes outside those bounds always get Barrett.
    pub fn choose_with(mode: StrategyMode, p: u64) -> Self {
        let mont_ok = p % 2 == 1 && p < MAX_LAZY_MODULUS;
        let montgomery = match mode {
            StrategyMode::Barrett => false,
            StrategyMode::Montgomery => mont_ok,
            StrategyMode::Auto => mont_ok && montgomery_wins(64 - p.leading_zeros()),
        };
        if montgomery {
            PointwiseStrategy::Montgomery(Montgomery::new(p))
        } else {
            PointwiseStrategy::Barrett(Barrett::new(p))
        }
    }

    /// Plan-time selection for one prime (`NTT_WARP_POINTWISE` override,
    /// else the benchmark-derived per-size verdict).
    pub fn choose(p: u64) -> Self {
        Self::choose_with(StrategyMode::from_env(), p)
    }

    /// Selection for a whole prime basis (one strategy per prime).
    pub fn choose_all(primes: &[u64]) -> Arc<[PointwiseStrategy]> {
        let mode = StrategyMode::from_env();
        primes.iter().map(|&p| Self::choose_with(mode, p)).collect()
    }
}

/// A mutable view over a flat batch of RNS limbs: `rows × N` residues
/// where row `r` is reduced mod prime `r % level`.
///
/// This covers both shapes backends care about:
///
/// * one polynomial at `level` active primes (`rows == level`), e.g. an
///   [`RnsPoly`]'s storage;
/// * several polynomials of `level` limbs stacked back to back
///   (`rows == k·level`), e.g. the key-switch **buffer of digits** that
///   submits all `level × digits` digit NTTs as one batched call.
pub struct LimbBatch<'a> {
    data: &'a mut [u64],
    n: usize,
    level: usize,
}

impl<'a> LimbBatch<'a> {
    /// Wrap a flat buffer of whole `n`-word rows, `level` rows per
    /// polynomial.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is not a whole number of rows or the row count
    /// is not a multiple of `level`.
    pub fn new(data: &'a mut [u64], n: usize, level: usize) -> Self {
        assert!(n >= 1 && level >= 1, "degenerate batch shape");
        assert_eq!(data.len() % n, 0, "flat buffer must be rows × N");
        assert_eq!(
            (data.len() / n) % level,
            0,
            "rows must form whole polynomials"
        );
        Self { data, n, level }
    }

    /// View over one polynomial's limbs.
    ///
    /// The caller is responsible for re-tagging the polynomial's
    /// representation afterwards ([`RnsPoly::set_repr`]) — batches carry no
    /// domain tag.
    pub fn from_poly(poly: &'a mut RnsPoly) -> Self {
        let (n, level) = (poly.degree(), poly.level());
        Self::new(poly.flat_mut(), n, level)
    }

    /// Row length `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Limbs per polynomial.
    #[inline]
    pub fn level(&self) -> usize {
        self.level
    }

    /// Total rows across all stacked polynomials.
    #[inline]
    pub fn rows(&self) -> usize {
        self.data.len() / self.n
    }

    /// The RNS prime index of row `r`.
    #[inline]
    pub fn prime_of(&self, r: usize) -> usize {
        r % self.level
    }

    /// The whole flat buffer.
    #[inline]
    pub fn data(&mut self) -> &mut [u64] {
        self.data
    }

    /// Immutable view of the flat buffer.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        self.data
    }
}

/// A precomputed execution plan for one [`RnsRing`] (FFTW-style).
///
/// Construction resolves everything the backends would otherwise redo per
/// call: the twiddle tables (already laid out as per-stage
/// `(value, companion)` slice-pairs inside [`NttTable`]), workspace sizing
/// for the fused multiply path, and the per-prime [`PointwiseStrategy`].
/// Plans are cheap to clone and thread-safe; prefer
/// [`RnsRing::plan`], which memoizes the strategy choice on the ring.
///
/// # Example
///
/// ```
/// use ntt_core::backend::RingPlan;
/// use ntt_core::RnsRing;
///
/// let ring = RnsRing::new(32, ntt_math::ntt_primes(59, 64, 2))?;
/// let plan = RingPlan::new(&ring);
/// assert_eq!(plan.degree(), 32);
/// // Two scratch rows per limb for the fused multiply path:
/// assert_eq!(plan.workspace_words(plan.np()), 2 * 2 * 32);
/// for i in 0..plan.np() {
///     assert_eq!(plan.strategy(i).modulus(), plan.table(i).modulus());
/// }
/// # Ok::<(), ntt_core::RingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RingPlan {
    ring: RnsRing,
    strategy: Arc<[PointwiseStrategy]>,
}

impl RingPlan {
    /// Plan for a ring (delegates to the ring's memoized plan cache).
    pub fn new(ring: &RnsRing) -> Self {
        ring.plan()
    }

    pub(crate) fn from_parts(ring: RnsRing, strategy: Arc<[PointwiseStrategy]>) -> Self {
        Self { ring, strategy }
    }

    /// The planned ring.
    #[inline]
    pub fn ring(&self) -> &RnsRing {
        &self.ring
    }

    /// Ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.ring.degree()
    }

    /// Number of primes in the full basis.
    #[inline]
    pub fn np(&self) -> usize {
        self.ring.np()
    }

    /// Twiddle table for prime `i` (per-stage slice-pairs, bit-reversed).
    #[inline]
    pub fn table(&self, i: usize) -> &NttTable {
        self.ring.ring(i).table()
    }

    /// The pointwise reduction strategy chosen for prime `i` at plan time.
    #[inline]
    pub fn strategy(&self, i: usize) -> &PointwiseStrategy {
        &self.strategy[i]
    }

    /// All per-prime strategies.
    #[inline]
    pub fn strategies(&self) -> &[PointwiseStrategy] {
        &self.strategy
    }

    /// Scratch words the fused multiply path needs for a `rows`-row batch
    /// (two operand staging rows per limb) — backends size their
    /// workspaces from this.
    #[inline]
    pub fn workspace_words(&self, rows: usize) -> usize {
        2 * rows * self.degree()
    }
}

/// An execution substrate for batched RNS NTT workloads.
///
/// All operations are *batched*: one call covers every limb in the
/// [`LimbBatch`], which is where both the CPU engine (residue-parallel
/// threading, one dispatch) and the GPU kernels (one launch over the
/// `np`-polynomial batch, §III of the paper) get their throughput.
///
/// Contracts shared by all implementations:
///
/// * residues are **canonical** (`< p`) on entry and exit of every call;
/// * forward transforms take natural-order input to bit-reversed
///   evaluations; inverse transforms undo exactly that;
/// * outputs are **bit-identical across backends** — the conformance suite
///   (`tests/backend_conformance.rs`) pins `CpuBackend` and the simulated
///   GPU backend to each other exactly.
///
/// # Example
///
/// ```
/// use ntt_core::backend::{CpuBackend, LimbBatch, NttBackend, RingPlan};
/// use ntt_core::{RnsPoly, RnsRing};
///
/// let ring = RnsRing::new(8, ntt_math::ntt_primes(59, 16, 2))?;
/// let plan = RingPlan::new(&ring);
/// let mut be = CpuBackend::default();
/// let mut x = RnsPoly::from_i64_coeffs(&ring, &[1, 2, 3]);
/// let orig = x.clone();
/// be.forward_batch(&plan, LimbBatch::from_poly(&mut x));
/// be.inverse_batch(&plan, LimbBatch::from_poly(&mut x));
/// assert_eq!(x.flat(), orig.flat()); // round trip is exact
/// # Ok::<(), ntt_core::RingError>(())
/// ```
pub trait NttBackend: Send {
    /// Short label for reports and conformance-test diagnostics.
    fn name(&self) -> &'static str;

    /// Forward-NTT every row of the batch in place.
    fn forward_batch(&mut self, plan: &RingPlan, batch: LimbBatch<'_>);

    /// Inverse-NTT every row of the batch in place.
    fn inverse_batch(&mut self, plan: &RingPlan, batch: LimbBatch<'_>);

    /// Element-wise product in the evaluation domain: `acc[i] *= rhs[i]`
    /// per row, reduced mod the row's prime with the plan's strategy.
    /// `rhs` must have the batch's exact shape.
    fn pointwise_batch(&mut self, plan: &RingPlan, acc: LimbBatch<'_>, rhs: &[u64]);

    /// Fused negacyclic products, one per row triple: `out = a ·̄ b` where
    /// all three buffers share the batch's shape and hold coefficient-form
    /// rows. Implementations fuse forward transforms, pointwise reduction
    /// and the inverse transform however their substrate prefers.
    fn multiply_batch(&mut self, plan: &RingPlan, a: &[u64], b: &[u64], out: LimbBatch<'_>);
}

/// The reference backend: the fused lazy-reduction CPU engine
/// ([`NttExecutor`]) behind the [`NttBackend`] vocabulary.
///
/// Thread policy comes from the executor ([`ThreadPolicy`], env-tunable
/// via `NTT_WARP_THREADS`); the workspace is grow-only, so steady-state
/// batches allocate nothing.
#[derive(Debug, Default)]
pub struct CpuBackend {
    exec: NttExecutor,
}

impl CpuBackend {
    /// CPU backend with an explicit thread policy.
    pub fn new(policy: ThreadPolicy) -> Self {
        Self {
            exec: NttExecutor::new(policy),
        }
    }

    /// CPU backend configured from `NTT_WARP_THREADS`.
    pub fn from_env() -> Self {
        Self {
            exec: NttExecutor::from_env(),
        }
    }

    /// The wrapped executor (e.g. for workspace accounting).
    #[inline]
    pub fn executor(&self) -> &NttExecutor {
        &self.exec
    }

    /// Mutable access to the wrapped executor (single-prime convenience
    /// paths route through here).
    #[inline]
    pub fn executor_mut(&mut self) -> &mut NttExecutor {
        &mut self.exec
    }
}

impl NttBackend for CpuBackend {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn forward_batch(&mut self, plan: &RingPlan, mut batch: LimbBatch<'_>) {
        let level = batch.level();
        self.exec
            .transform_rows_of(plan.ring(), level, batch.data(), true);
    }

    fn inverse_batch(&mut self, plan: &RingPlan, mut batch: LimbBatch<'_>) {
        let level = batch.level();
        self.exec
            .transform_rows_of(plan.ring(), level, batch.data(), false);
    }

    fn pointwise_batch(&mut self, plan: &RingPlan, mut acc: LimbBatch<'_>, rhs: &[u64]) {
        let (n, level) = (acc.n(), acc.level());
        assert_eq!(acc.as_slice().len(), rhs.len(), "operand shape mismatch");
        for (r, (row, rhs_row)) in acc
            .data()
            .chunks_exact_mut(n)
            .zip(rhs.chunks_exact(n))
            .enumerate()
        {
            match plan.strategy(r % level) {
                PointwiseStrategy::Barrett(br) => {
                    for (x, &y) in row.iter_mut().zip(rhs_row) {
                        *x = br.mul(*x, y);
                    }
                }
                PointwiseStrategy::Montgomery(m) => {
                    for (x, &y) in row.iter_mut().zip(rhs_row) {
                        *x = m.mul_plain(*x, y);
                    }
                }
            }
        }
    }

    fn multiply_batch(&mut self, plan: &RingPlan, a: &[u64], b: &[u64], mut out: LimbBatch<'_>) {
        let level = out.level();
        self.exec.multiply_rows_of(
            plan.ring(),
            level,
            a,
            b,
            out.data(),
            Some(plan.strategies()),
        );
    }
}

thread_local! {
    static DEFAULT_BACKEND: RefCell<CpuBackend> = RefCell::new(CpuBackend::from_env());
}

/// Run `f` with this thread's default [`CpuBackend`] (thread policy from
/// `NTT_WARP_THREADS`, workspace persisted across calls). The ring-level
/// convenience APIs ([`RnsRing::multiply`], [`RnsPoly::to_evaluation`], …)
/// route through here, so ordinary callers get plan-based batched
/// execution without holding an [`Evaluator`].
///
/// `f` must not itself re-enter this function (the backend is held in a
/// `RefCell`).
pub fn with_default_backend<R>(f: impl FnOnce(&mut CpuBackend) -> R) -> R {
    DEFAULT_BACKEND.with(|b| f(&mut b.borrow_mut()))
}

/// A backend-generic driver: one [`RingPlan`] plus one boxed
/// [`NttBackend`], with polynomial-level operations on top of the batched
/// trait vocabulary.
///
/// This is the object `he-lite` holds; swapping the execution substrate is
/// a one-line constructor change:
///
/// ```
/// use ntt_core::backend::{CpuBackend, Evaluator};
/// use ntt_core::{RnsPoly, RnsRing};
///
/// let ring = RnsRing::new(16, ntt_math::ntt_primes(59, 32, 2))?;
/// // let mut ev = Evaluator::with_backend(&ring, Box::new(SimBackend::titan_v()));
/// let mut ev = Evaluator::with_backend(&ring, Box::new(CpuBackend::default()));
///
/// let mut x = RnsPoly::from_i64_coeffs(&ring, &[2, 0, 1]);
/// ev.to_evaluation(&mut x);
/// ev.to_coefficient(&mut x);
/// assert_eq!(x.coefficient_centered(&ring, 2), Some(1));
/// # Ok::<(), ntt_core::RingError>(())
/// ```
pub struct Evaluator {
    plan: RingPlan,
    backend: Box<dyn NttBackend>,
}

impl std::fmt::Debug for Evaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Evaluator")
            .field("backend", &self.backend.name())
            .field("degree", &self.plan.degree())
            .field("np", &self.plan.np())
            .finish()
    }
}

impl Evaluator {
    /// Pair an existing plan with a backend.
    pub fn new(plan: RingPlan, backend: Box<dyn NttBackend>) -> Self {
        Self { plan, backend }
    }

    /// Evaluator over `ring` with the given backend (plans the ring).
    pub fn with_backend(ring: &RnsRing, backend: Box<dyn NttBackend>) -> Self {
        Self::new(ring.plan(), backend)
    }

    /// Evaluator over `ring` with the default CPU backend.
    pub fn cpu(ring: &RnsRing) -> Self {
        Self::with_backend(ring, Box::new(CpuBackend::from_env()))
    }

    /// The plan in force.
    #[inline]
    pub fn plan(&self) -> &RingPlan {
        &self.plan
    }

    /// The planned ring.
    #[inline]
    pub fn ring(&self) -> &RnsRing {
        self.plan.ring()
    }

    /// The backend's label.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Forward-transform a polynomial (no-op if already in evaluation
    /// form).
    pub fn to_evaluation(&mut self, poly: &mut RnsPoly) {
        if poly.repr() == Representation::Evaluation {
            return;
        }
        self.backend
            .forward_batch(&self.plan, LimbBatch::from_poly(poly));
        poly.set_repr(Representation::Evaluation);
    }

    /// Inverse-transform a polynomial (no-op if already in coefficient
    /// form).
    pub fn to_coefficient(&mut self, poly: &mut RnsPoly) {
        if poly.repr() == Representation::Coefficient {
            return;
        }
        self.backend
            .inverse_batch(&self.plan, LimbBatch::from_poly(poly));
        poly.set_repr(Representation::Coefficient);
    }

    /// Forward-transform several polynomials (each already-transformed one
    /// is skipped).
    pub fn forward_polys(&mut self, polys: &mut [&mut RnsPoly]) {
        for poly in polys {
            self.to_evaluation(poly);
        }
    }

    /// Inverse counterpart of [`Evaluator::forward_polys`].
    pub fn inverse_polys(&mut self, polys: &mut [&mut RnsPoly]) {
        for poly in polys {
            self.to_coefficient(poly);
        }
    }

    /// Forward-NTT a raw buffer-of-digits batch: `rows × N` residues, row
    /// `r` mod prime `r % level` — all `level × digits` key-switch digit
    /// NTTs in **one** backend call.
    pub fn forward_flat(&mut self, level: usize, data: &mut [u64]) {
        let n = self.plan.degree();
        self.backend
            .forward_batch(&self.plan, LimbBatch::new(data, n, level));
    }

    /// Pointwise product `acc *= rhs` (both in evaluation form).
    ///
    /// # Panics
    ///
    /// Panics on level mismatch or if either operand is in coefficient
    /// form.
    pub fn mul_pointwise(&mut self, acc: &mut RnsPoly, rhs: &RnsPoly) {
        assert_eq!(acc.level(), rhs.level(), "level mismatch");
        assert_eq!(
            acc.repr(),
            Representation::Evaluation,
            "lhs not in NTT form"
        );
        assert_eq!(
            rhs.repr(),
            Representation::Evaluation,
            "rhs not in NTT form"
        );
        self.backend
            .pointwise_batch(&self.plan, LimbBatch::from_poly(acc), rhs.flat());
    }

    /// Fused negacyclic product of two coefficient-form polynomials.
    ///
    /// # Panics
    ///
    /// Panics on level mismatch or non-coefficient operands.
    pub fn multiply(&mut self, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        multiply_with(&mut *self.backend, &self.plan, a, b)
    }
}

/// The one fused-multiply entry: precondition checks plus the batched
/// backend call. Shared by [`Evaluator::multiply`] and the ring-level
/// convenience API ([`RnsRing::multiply`]) so the operand contract lives
/// in exactly one place.
///
/// # Panics
///
/// Panics on level mismatch or non-coefficient operands.
pub(crate) fn multiply_with(
    backend: &mut dyn NttBackend,
    plan: &RingPlan,
    a: &RnsPoly,
    b: &RnsPoly,
) -> RnsPoly {
    assert_eq!(a.level(), b.level(), "level mismatch");
    assert_eq!(
        a.repr(),
        Representation::Coefficient,
        "lhs must be coefficients"
    );
    assert_eq!(
        b.repr(),
        Representation::Coefficient,
        "rhs must be coefficients"
    );
    let mut out = RnsPoly::zero_at_level(plan.ring(), a.level());
    backend.multiply_batch(plan, a.flat(), b.flat(), LimbBatch::from_poly(&mut out));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::negacyclic_convolution;

    fn ring(n: usize, np: usize) -> RnsRing {
        RnsRing::new(n, ntt_math::ntt_primes(59, 2 * n as u64, np)).unwrap()
    }

    #[test]
    fn strategies_agree_on_canonical_products() {
        for p in [
            ntt_math::ntt_prime(31, 64).unwrap(),
            ntt_math::ntt_prime(59, 64).unwrap(),
            ntt_math::ntt_prime(61, 64).unwrap(),
        ] {
            let br = PointwiseStrategy::choose_with(StrategyMode::Barrett, p);
            let mo = PointwiseStrategy::choose_with(StrategyMode::Montgomery, p);
            assert!(matches!(br, PointwiseStrategy::Barrett(_)));
            assert!(matches!(mo, PointwiseStrategy::Montgomery(_)));
            for (a, b) in [(0, 1), (p - 1, p - 1), (p / 2, p / 3), (12345, p - 7)] {
                assert_eq!(br.mul(a, b), mo.mul(a, b), "a={a} b={b} p={p}");
                assert_eq!(br.mul(a, b), ntt_math::mul_mod(a, b, p));
            }
        }
    }

    #[test]
    fn oversized_modulus_falls_back_to_barrett() {
        // A 63-bit prime is above the 2^62 lazy bound: Montgomery must not
        // be selected even when forced.
        let p = 0x7FFF_FFFF_FFFF_FD21u64;
        assert!(ntt_math::is_prime(p));
        let s = PointwiseStrategy::choose_with(StrategyMode::Montgomery, p);
        assert!(matches!(s, PointwiseStrategy::Barrett(_)));
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(StrategyMode::parse("barrett"), StrategyMode::Barrett);
        assert_eq!(StrategyMode::parse(" MONT "), StrategyMode::Montgomery);
        assert_eq!(StrategyMode::parse("montgomery"), StrategyMode::Montgomery);
        assert_eq!(StrategyMode::parse(""), StrategyMode::Auto);
        assert_eq!(StrategyMode::parse("bogus"), StrategyMode::Auto);
    }

    #[test]
    fn calibration_returns_finite_timings() {
        let p = ntt_math::ntt_prime(59, 1 << 12).unwrap();
        let (b, m) = calibrate_pointwise(p);
        assert!(b.is_finite() && b > 0.0);
        assert!(m.is_finite() && m > 0.0);
    }

    #[test]
    fn limb_batch_shape_checks() {
        let mut data = vec![0u64; 6 * 8];
        let batch = LimbBatch::new(&mut data, 8, 3); // 2 stacked polys of 3 limbs
        assert_eq!(batch.rows(), 6);
        assert_eq!(batch.prime_of(4), 1);
    }

    #[test]
    #[should_panic(expected = "whole polynomials")]
    fn limb_batch_rejects_ragged_stack() {
        let mut data = vec![0u64; 5 * 8];
        let _ = LimbBatch::new(&mut data, 8, 3);
    }

    #[test]
    fn cpu_backend_multiply_matches_naive() {
        let ring = ring(16, 3);
        let plan = RingPlan::new(&ring);
        let a = RnsPoly::from_i64_coeffs(&ring, &[3, -1, 4]);
        let b = RnsPoly::from_i64_coeffs(&ring, &[-2, 7]);
        let mut out = RnsPoly::zero(&ring);
        let mut be = CpuBackend::default();
        be.multiply_batch(&plan, a.flat(), b.flat(), LimbBatch::from_poly(&mut out));
        for i in 0..3 {
            let p = ring.basis().primes()[i];
            let want = negacyclic_convolution(a.row(i), b.row(i), p);
            assert_eq!(out.row(i), &want[..], "limb {i}");
        }
    }

    #[test]
    fn stacked_batch_transforms_each_poly_independently() {
        // Two polynomials stacked in one buffer-of-digits batch must give
        // the same rows as two separate per-poly transforms.
        let ring = ring(16, 2);
        let plan = RingPlan::new(&ring);
        let x = RnsPoly::from_i64_coeffs(&ring, &[1, -2, 3]);
        let y = RnsPoly::from_i64_coeffs(&ring, &[7, 0, -5, 2]);
        let mut stacked: Vec<u64> = [x.flat(), y.flat()].concat();
        let mut be = CpuBackend::default();
        be.forward_batch(&plan, LimbBatch::new(&mut stacked, 16, 2));
        let (mut ex, mut ey) = (x.clone(), y.clone());
        ex.to_evaluation(&ring);
        ey.to_evaluation(&ring);
        assert_eq!(&stacked[..2 * 16], ex.flat());
        assert_eq!(&stacked[2 * 16..], ey.flat());
    }

    #[test]
    fn evaluator_roundtrip_and_pointwise() {
        let ring = ring(16, 3);
        let mut ev = Evaluator::cpu(&ring);
        assert_eq!(ev.backend_name(), "cpu");
        let a = RnsPoly::from_i64_coeffs(&ring, &[1, 2]);
        let b = RnsPoly::from_i64_coeffs(&ring, &[3, -1]);
        // multiply via fused batch == transform + pointwise + inverse.
        let fused = ev.multiply(&a, &b);
        let (mut ea, mut eb) = (a.clone(), b.clone());
        ev.forward_polys(&mut [&mut ea, &mut eb]);
        ev.mul_pointwise(&mut ea, &eb);
        ev.to_coefficient(&mut ea);
        assert_eq!(fused, ea);
    }
}
