//! Pluggable execution backends and plan-based batched NTT execution.
//!
//! The paper's central claim is that one NTT workload — batches of RNS
//! limb transforms — runs on very different execution substrates (a scalar
//! CPU reference, GPU kernels at several radices). This module is the API
//! boundary that makes the substrate swappable:
//!
//! * [`NttBackend`] — the trait every execution substrate implements. Its
//!   vocabulary is *batched RNS operations* over [`LimbBatch`] views:
//!   [`NttBackend::forward_batch`], [`NttBackend::inverse_batch`],
//!   [`NttBackend::pointwise_batch`], and the fused
//!   [`NttBackend::multiply_batch`]. Backends never see individual
//!   polynomials — only flat buffers of limbs, the layout both the CPU
//!   engine and the simulated GPU kernels natively consume.
//! * [`RingPlan`] — an FFTW-style precomputed plan handle: the ring's
//!   twiddle tables (per-stage `(value, companion)` slice-pairs in
//!   bit-reversed order), workspace sizing, and a per-prime pointwise
//!   reduction strategy ([`PointwiseStrategy`], Montgomery vs. Barrett)
//!   chosen **once at plan time** from a micro-benchmark. Plans are cheap
//!   handles (`Arc` internals) and are memoized on the ring
//!   ([`crate::poly::RnsRing::plan`]).
//! * [`CpuBackend`] — the reference backend wrapping the fused
//!   lazy-reduction [`NttExecutor`] and its grow-only workspace.
//! * [`Evaluator`] — a backend-generic driver pairing a plan with a boxed
//!   backend; `he-lite` routes every context operation through one, so
//!   swapping the execution substrate is a one-line constructor change.
//!   (The simulated-GPU backend lives in the `ntt-gpu` crate as
//!   `SimBackend`, since the warp kernels live there.)
//!
//! # Example
//!
//! ```
//! use ntt_core::backend::{Evaluator, LimbBatch, NttBackend, RingPlan};
//! use ntt_core::{RnsPoly, RnsRing};
//!
//! let ring = RnsRing::new(16, ntt_math::ntt_primes(59, 32, 3))?;
//! let plan = RingPlan::new(&ring); // tables + strategies chosen here
//! let mut ev = Evaluator::cpu(&ring);
//!
//! let a = RnsPoly::from_i64_coeffs(&ring, &[1, 1]); // 1 + x
//! let c = ev.multiply(&a, &a); // one fused multiply_batch call
//! assert_eq!(c.coefficient_centered(&ring, 1), Some(2));
//! assert_eq!(plan.np(), 3);
//! # Ok::<(), ntt_core::RingError>(())
//! ```

use crate::engine::{NttExecutor, ThreadPolicy};
use crate::poly::{Representation, RnsPoly, RnsRing};
use crate::table::NttTable;
use ntt_math::modops::{add_mod, neg_mod, sub_mod};
use ntt_math::mont::Montgomery;
use ntt_math::shoup::MAX_LAZY_MODULUS;
use ntt_math::Barrett;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// How the plan reduces pointwise products for one prime.
///
/// Both strategies return the exact canonical product `a·b mod p`, so the
/// choice never changes results — only throughput. Barrett costs five wide
/// multiplies per product; Montgomery (double-REDC on ordinary-form
/// operands, [`Montgomery::mul_plain`]) costs four but with a longer
/// dependency chain. Which one wins is host-specific, which is why the
/// plan decides from a measurement (see [`PointwiseStrategy::choose`]).
#[derive(Debug, Clone, Copy)]
pub enum PointwiseStrategy {
    /// Barrett reduction with a precomputed 128-bit reciprocal.
    Barrett(Barrett),
    /// Montgomery double-REDC on ordinary-form operands.
    Montgomery(Montgomery),
}

/// Strategy selection mode (the parsed `NTT_WARP_POINTWISE` value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrategyMode {
    /// Decide from the process-wide micro-benchmark (the default).
    #[default]
    Auto,
    /// Force Barrett everywhere.
    Barrett,
    /// Force Montgomery wherever its preconditions hold.
    Montgomery,
}

impl StrategyMode {
    /// Parse the `NTT_WARP_POINTWISE` syntax: `barrett`, `montgomery` /
    /// `mont`, anything else (or unset) → `Auto`.
    pub fn parse(s: &str) -> Self {
        match s.trim().to_ascii_lowercase().as_str() {
            "barrett" => StrategyMode::Barrett,
            "montgomery" | "mont" => StrategyMode::Montgomery,
            _ => StrategyMode::Auto,
        }
    }

    /// Mode from the `NTT_WARP_POINTWISE` environment variable. An
    /// unrecognized value falls back to `Auto` with a one-line warning on
    /// stderr (a typo must not silently turn a forced strategy into the
    /// calibrated one).
    pub fn from_env() -> Self {
        let Ok(s) = std::env::var("NTT_WARP_POINTWISE") else {
            return StrategyMode::Auto;
        };
        let mode = Self::parse(&s);
        let t = s.trim();
        if mode == StrategyMode::Auto && !t.is_empty() && !t.eq_ignore_ascii_case("auto") {
            eprintln!(
                "ntt-warp: unrecognized NTT_WARP_POINTWISE={t:?} \
                 (expected auto|barrett|montgomery), using auto"
            );
        }
        mode
    }
}

/// Time one pointwise pass (ns per element) for both strategies on a
/// scratch buffer mod `p`. Used by the plan-time auto selection; exposed
/// so benches and tests can inspect the measurement.
pub fn calibrate_pointwise(p: u64) -> (f64, f64) {
    const LEN: usize = 2048;
    const REPS: usize = 4;
    let a: Vec<u64> = (0..LEN as u64)
        .map(|i| i.wrapping_mul(0x9E37) % p)
        .collect();
    let b: Vec<u64> = (0..LEN as u64).map(|i| (i * i + 7) % p).collect();
    let time = |f: &dyn Fn() -> u64| {
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = std::time::Instant::now();
            // The sink must be consumed *before* the clock is read, or the
            // optimizer may move the pure loop past the measurement.
            std::hint::black_box(f());
            let dt = t0.elapsed().as_nanos() as f64 / LEN as f64;
            best = best.min(dt);
        }
        best
    };
    let br = Barrett::new(p);
    let barrett_ns = time(&|| {
        let mut acc = 0u64;
        for (&x, &y) in a.iter().zip(&b) {
            acc = acc.wrapping_add(br.mul(x, y));
        }
        acc
    });
    let m = Montgomery::new(p);
    let mont_ns = time(&|| {
        let mut acc = 0u64;
        for (&x, &y) in a.iter().zip(&b) {
            acc = acc.wrapping_add(m.mul_plain(x, y));
        }
        acc
    });
    (barrett_ns, mont_ns)
}

/// Process-wide calibration verdict per prime-size class (index 0: below
/// 40 bits, index 1: 40 bits and up). Resolved in order: the per-host
/// calibration file ([`crate::calibration`], reproducible across runs),
/// else measured once on a representative prime of that class and written
/// back to the file (best effort).
fn montgomery_wins(bits: u32) -> bool {
    static WINS: [OnceLock<bool>; 2] = [OnceLock::new(), OnceLock::new()];
    let class = usize::from(bits >= 40);
    *WINS[class].get_or_init(|| {
        let path = crate::calibration::calibration_path();
        // Largest NTT-friendly primes of each class (2N = 2^12 keeps the
        // probe representative of real parameter sets).
        let probe_bits = if class == 0 { 31 } else { 61 };
        // Persisted verdicts are keyed by the probe parameters: change
        // the probe (prime class, order) and old entries stop matching,
        // forcing a fresh measurement instead of a stale verdict.
        let fp = crate::calibration::measurement_fingerprint(&[probe_bits as u64, 1 << 12]);
        if let Some(v) = path
            .as_deref()
            .and_then(|p| crate::calibration::load_pointwise_verdict(p, class, fp))
        {
            return v;
        }
        let probe = ntt_math::ntt_prime(probe_bits, 1 << 12).expect("probe prime exists");
        let (barrett_ns, mont_ns) = calibrate_pointwise(probe);
        let verdict = mont_ns < barrett_ns;
        if let Some(p) = path.as_deref() {
            crate::calibration::store_pointwise_verdict(p, class, fp, verdict);
        }
        verdict
    })
}

impl PointwiseStrategy {
    /// The prime this strategy reduces for.
    #[inline]
    pub fn modulus(&self) -> u64 {
        match self {
            PointwiseStrategy::Barrett(b) => b.modulus(),
            PointwiseStrategy::Montgomery(m) => m.modulus(),
        }
    }

    /// Short label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PointwiseStrategy::Barrett(_) => "barrett",
            PointwiseStrategy::Montgomery(_) => "montgomery",
        }
    }

    /// Canonical product `a·b mod p` for canonical operands.
    #[inline(always)]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        match self {
            PointwiseStrategy::Barrett(br) => br.mul(a, b),
            PointwiseStrategy::Montgomery(m) => m.mul_plain(a, b),
        }
    }

    /// Plan-time selection for one prime under an explicit mode.
    ///
    /// Montgomery requires an odd modulus and, for the fused lazy pipeline,
    /// `p < 2^62`; primes outside those bounds always get Barrett.
    pub fn choose_with(mode: StrategyMode, p: u64) -> Self {
        let mont_ok = p % 2 == 1 && p < MAX_LAZY_MODULUS;
        let montgomery = match mode {
            StrategyMode::Barrett => false,
            StrategyMode::Montgomery => mont_ok,
            StrategyMode::Auto => mont_ok && montgomery_wins(64 - p.leading_zeros()),
        };
        if montgomery {
            PointwiseStrategy::Montgomery(Montgomery::new(p))
        } else {
            PointwiseStrategy::Barrett(Barrett::new(p))
        }
    }

    /// Plan-time selection for one prime (`NTT_WARP_POINTWISE` override,
    /// else the benchmark-derived per-size verdict).
    pub fn choose(p: u64) -> Self {
        Self::choose_with(StrategyMode::from_env(), p)
    }

    /// Selection for a whole prime basis (one strategy per prime).
    pub fn choose_all(primes: &[u64]) -> Arc<[PointwiseStrategy]> {
        let mode = StrategyMode::from_env();
        primes.iter().map(|&p| Self::choose_with(mode, p)).collect()
    }
}

/// A mutable view over a flat batch of RNS limbs: `rows × N` residues
/// where row `r` is reduced mod prime `r % level`.
///
/// This covers both shapes backends care about:
///
/// * one polynomial at `level` active primes (`rows == level`), e.g. an
///   [`RnsPoly`]'s storage;
/// * several polynomials of `level` limbs stacked back to back
///   (`rows == k·level`), e.g. the key-switch **buffer of digits** that
///   submits all `level × digits` digit NTTs as one batched call.
pub struct LimbBatch<'a> {
    data: &'a mut [u64],
    n: usize,
    level: usize,
}

impl<'a> LimbBatch<'a> {
    /// Wrap a flat buffer of whole `n`-word rows, `level` rows per
    /// polynomial.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is not a whole number of rows or the row count
    /// is not a multiple of `level`.
    pub fn new(data: &'a mut [u64], n: usize, level: usize) -> Self {
        assert!(n >= 1 && level >= 1, "degenerate batch shape");
        assert_eq!(data.len() % n, 0, "flat buffer must be rows × N");
        assert_eq!(
            (data.len() / n) % level,
            0,
            "rows must form whole polynomials"
        );
        Self { data, n, level }
    }

    /// View over one polynomial's limbs.
    ///
    /// The caller is responsible for re-tagging the polynomial's
    /// representation afterwards ([`RnsPoly::set_repr`]) — batches carry no
    /// domain tag.
    pub fn from_poly(poly: &'a mut RnsPoly) -> Self {
        let (n, level) = (poly.degree(), poly.level());
        Self::new(poly.flat_mut(), n, level)
    }

    /// Row length `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Limbs per polynomial.
    #[inline]
    pub fn level(&self) -> usize {
        self.level
    }

    /// Total rows across all stacked polynomials.
    #[inline]
    pub fn rows(&self) -> usize {
        self.data.len() / self.n
    }

    /// The RNS prime index of row `r`.
    #[inline]
    pub fn prime_of(&self, r: usize) -> usize {
        r % self.level
    }

    /// The whole flat buffer.
    #[inline]
    pub fn data(&mut self) -> &mut [u64] {
        self.data
    }

    /// Immutable view of the flat buffer.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        self.data
    }
}

/// An opaque handle to a backend-owned device buffer.
///
/// The id names an allocation inside one backend's [`DeviceMemory`]; the
/// `(base, len)` pair is a word range within it, so [`DeviceBuf::sub`]
/// carves sub-views (e.g. one digit polynomial out of a key-switch digit
/// buffer) without new allocations — the handle algebra of a CUDA device
/// pointer. Handles are meaningless outside the memory that issued them.
///
/// # Example
///
/// ```
/// use ntt_core::backend::{CpuBackend, NttBackend};
///
/// let be = CpuBackend::default();
/// let mem = be.memory();
/// let buf = mem.lock().unwrap().alloc(64); // zeroed device words
/// assert_eq!(buf.len(), 64);
/// let tail = buf.sub(32, 32); // a view, not a copy
/// assert_eq!(tail.len(), 32);
/// let mut host = vec![1u64; 64];
/// mem.lock().unwrap().download(buf, &mut host);
/// assert_eq!(host, vec![0u64; 64]);
/// assert_eq!(mem.lock().unwrap().stats().downloads, 1);
/// # mem.lock().unwrap().free(buf);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceBuf {
    id: u64,
    base: usize,
    len: usize,
}

/// Reserve a process-unique id namespace for one [`DeviceMemory`]
/// instance: the returned value is the starting `next_id` for that
/// memory's allocations (ids are minted by incrementing past it).
///
/// Every memory in the process draws from one atomic counter, shifted
/// into the high bits, so two memories can never mint the same handle id.
/// Without this, per-instance counters all start at 1 and a [`DeviceBuf`]
/// from backend A *silently resolves* against backend B's unrelated
/// allocation of the same ordinal — the worst form of the foreign-handle
/// bug, corrupting data instead of failing. With disjoint namespaces a
/// foreign handle misses the map, which the fallible surface reports as
/// [`BackendError::Fatal`] (and infallible paths fail fast on).
///
/// The low 40 bits leave room for a trillion allocations per memory; the
/// high 24 bits allow sixteen million memory instances per process.
pub fn handle_namespace() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(0);
    NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed) << 40
}

impl DeviceBuf {
    /// A whole-allocation handle — for [`DeviceMemory`] implementors
    /// returning freshly allocated buffers (`base` 0, full length).
    pub fn root(id: u64, len: usize) -> DeviceBuf {
        DeviceBuf { id, base: 0, len }
    }

    /// The allocation id within the issuing [`DeviceMemory`].
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Word offset of this view within its allocation.
    #[inline]
    pub fn base(&self) -> usize {
        self.base
    }

    /// View length in 64-bit words.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for zero-length views.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-view (`offset..offset + len` within this view).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the view.
    pub fn sub(&self, offset: usize, len: usize) -> DeviceBuf {
        assert!(offset + len <= self.len, "device sub-buffer out of range");
        DeviceBuf {
            id: self.id,
            base: self.base + offset,
            len,
        }
    }
}

/// Host↔device transfer counters for one [`DeviceMemory`].
///
/// This is the residency ledger: `uploads`/`downloads` cross the
/// (simulated) bus, `d2d_copies` stay on the device, `allocs`/`frees`
/// track buffer churn. A chain that claims device residency is gated on
/// `host_transfers()` staying zero over its steady-state window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Host→device copies (calls).
    pub uploads: u64,
    /// Host→device words moved.
    pub upload_words: u64,
    /// Device→host copies (calls).
    pub downloads: u64,
    /// Device→host words moved.
    pub download_words: u64,
    /// Device-to-device copies.
    pub d2d_copies: u64,
    /// Buffer allocations served.
    pub allocs: u64,
    /// Buffers released.
    pub frees: u64,
}

impl TransferStats {
    /// Transfers that crossed the host↔device bus (uploads + downloads).
    pub fn host_transfers(&self) -> u64 {
        self.uploads + self.downloads
    }

    /// Counter-wise difference `self - earlier` (steady-state windows).
    pub fn since(&self, earlier: &TransferStats) -> TransferStats {
        TransferStats {
            uploads: self.uploads - earlier.uploads,
            upload_words: self.upload_words - earlier.upload_words,
            downloads: self.downloads - earlier.downloads,
            download_words: self.download_words - earlier.download_words,
            d2d_copies: self.d2d_copies - earlier.d2d_copies,
            allocs: self.allocs - earlier.allocs,
            frees: self.frees - earlier.frees,
        }
    }
}

/// Classification of a [`BackendError`] — what a caller should *do* about
/// the failure.
///
/// * [`Transient`](FaultClass::Transient) → bounded retry of the identical
///   operation may succeed.
/// * [`Fatal`](FaultClass::Fatal) → the executor is gone; quarantine the
///   backend fork, re-fork, or degrade to the host path.
/// * [`Oom`](FaultClass::Oom) → device memory exhausted; shrink the
///   working set or degrade.
/// * [`Deadline`](FaultClass::Deadline) → a caller-imposed time budget
///   expired; the work was abandoned, not the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Retryable one-shot fault.
    Transient,
    /// The executor is wedged; retrying on it cannot succeed.
    Fatal,
    /// Device memory exhausted.
    Oom,
    /// A caller-imposed deadline expired.
    Deadline,
}

/// Why a fallible (`try_*`) backend operation failed — the typed error
/// surface of the device layer.
///
/// The variants map one-to-one onto [`FaultClass`]; callers almost always
/// branch on [`class`](BackendError::class) /
/// [`is_transient`](BackendError::is_transient) rather than the variant,
/// and carry `op` (the backend entry point that failed) purely for
/// diagnostics and metrics.
///
/// The fallible surface guarantees **failure atomicity** where the
/// backend can provide it: the shipped backends fire their fault gates
/// *before* touching operand data, so an `Err` means host and device
/// state are exactly as they were and the identical call can be retried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// A one-shot fault (flaky link, spurious launch abort): the
    /// operation did not run, the device is otherwise healthy, and an
    /// identical retry may succeed.
    Transient {
        /// The backend entry point that failed.
        op: &'static str,
    },
    /// The executor is wedged (sticky device fault, freed/foreign buffer
    /// handle): every further operation on it will fail until it is
    /// reinitialized.
    Fatal {
        /// The backend entry point that failed.
        op: &'static str,
    },
    /// Device memory exhausted.
    Oom {
        /// The backend entry point that failed.
        op: &'static str,
        /// Words the failing request asked for.
        words: usize,
    },
    /// A caller-imposed deadline expired before (or while) the operation
    /// ran. Produced by schedulers above the backend, never by the
    /// device itself.
    Deadline {
        /// The operation or request stage that timed out.
        op: &'static str,
    },
}

impl BackendError {
    /// The failure class callers branch on.
    pub fn class(&self) -> FaultClass {
        match self {
            BackendError::Transient { .. } => FaultClass::Transient,
            BackendError::Fatal { .. } => FaultClass::Fatal,
            BackendError::Oom { .. } => FaultClass::Oom,
            BackendError::Deadline { .. } => FaultClass::Deadline,
        }
    }

    /// The backend entry point (or request stage) that failed.
    pub fn op(&self) -> &'static str {
        match self {
            BackendError::Transient { op }
            | BackendError::Fatal { op }
            | BackendError::Oom { op, .. }
            | BackendError::Deadline { op } => op,
        }
    }

    /// Whether a bounded retry of the identical operation is worthwhile.
    pub fn is_transient(&self) -> bool {
        self.class() == FaultClass::Transient
    }
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Transient { op } => write!(f, "transient device fault in {op}"),
            BackendError::Fatal { op } => write!(f, "fatal device fault in {op}"),
            BackendError::Oom { op, words } => {
                write!(f, "device out of memory in {op} ({words} words)")
            }
            BackendError::Deadline { op } => write!(f, "deadline expired in {op}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// A backend's device memory: allocation, host↔device staging, and the
/// transfer ledger.
///
/// Implementations are shared between a backend and every device-resident
/// [`RnsPoly`] through a [`SharedDeviceMemory`] handle, which is what lets
/// a polynomial lazily download itself on a host read without holding the
/// backend. [`CpuBackend`] supplies the trivial identity implementation
/// ([`HostArena`]: "device" memory is host memory, transfers are counted
/// memcpys); the simulated GPU backend charges real [`gpu-sim`] GMEM
/// traffic.
pub trait DeviceMemory: Send {
    /// Allocate `words` zeroed device words.
    fn alloc(&mut self, words: usize) -> DeviceBuf;

    /// Host→device copy of `src` into the front of `dst` (counted).
    ///
    /// # Panics
    ///
    /// Panics if `src` exceeds the buffer view.
    fn upload(&mut self, dst: DeviceBuf, src: &[u64]);

    /// Device→host copy of the front of `src` into `dst` (counted).
    ///
    /// # Panics
    ///
    /// Panics if `dst` exceeds the buffer view.
    fn download(&mut self, src: DeviceBuf, dst: &mut [u64]);

    /// Device-to-device copy (`src` → front of `dst`); never crosses the
    /// bus.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is shorter than `src`.
    fn copy(&mut self, src: DeviceBuf, dst: DeviceBuf);

    /// Release a buffer for reuse. The handle (and every sub-view of it)
    /// must not be used afterwards.
    fn free(&mut self, buf: DeviceBuf);

    /// The transfer ledger since construction or the last reset.
    fn stats(&self) -> TransferStats;

    /// Zero the transfer ledger.
    fn reset_stats(&mut self);

    // ---- Fallible surface -------------------------------------------------
    //
    // Backends with a fault model (the simulated GPU under an armed
    // `FaultPlan`) override these; the defaults delegate to the
    // infallible methods, so host-memory backends stay zero-cost and
    // never fail.

    /// Fallible [`DeviceMemory::alloc`]: fails with
    /// [`BackendError::Oom`] when the device cannot serve the request,
    /// or a classified fault under an armed fault model.
    fn try_alloc(&mut self, words: usize) -> Result<DeviceBuf, BackendError> {
        Ok(self.alloc(words))
    }

    /// Fallible [`DeviceMemory::upload`]. On `Err` the destination
    /// buffer is unchanged.
    fn try_upload(&mut self, dst: DeviceBuf, src: &[u64]) -> Result<(), BackendError> {
        self.upload(dst, src);
        Ok(())
    }

    /// Fallible [`DeviceMemory::download`]. On `Err` the host slice is
    /// unchanged.
    fn try_download(&mut self, src: DeviceBuf, dst: &mut [u64]) -> Result<(), BackendError> {
        self.download(src, dst);
        Ok(())
    }
}

/// The shared handle to a backend's [`DeviceMemory`] — held by the backend
/// and embedded in every device-resident [`RnsPoly`].
pub type SharedDeviceMemory = Arc<Mutex<dyn DeviceMemory>>;

/// Whether two memory handles name the same device memory (pointer
/// identity on the shared allocation, ignoring trait-object metadata).
pub fn same_memory(a: &SharedDeviceMemory, b: &SharedDeviceMemory) -> bool {
    std::ptr::eq(Arc::as_ptr(a) as *const u8, Arc::as_ptr(b) as *const u8)
}

/// Lock a device memory, recovering from poisoning (the arena holds plain
/// words; a panic mid-operation cannot corrupt the allocator maps beyond
/// what the panicking operation already owned).
pub(crate) fn lock_memory(
    mem: &SharedDeviceMemory,
) -> std::sync::MutexGuard<'_, dyn DeviceMemory + 'static> {
    mem.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The identity [`DeviceMemory`]: "device" buffers are host vectors.
///
/// This is [`CpuBackend`]'s memory — uploads and downloads are memcpys,
/// but they are **counted** exactly like real bus transfers, so the
/// residency state machine is testable (and conformance-comparable against
/// the simulated GPU) without any device at all.
#[derive(Debug)]
pub struct HostArena {
    bufs: HashMap<u64, Vec<u64>>,
    next_id: u64,
    stats: TransferStats,
}

impl Default for HostArena {
    /// An empty arena whose handle ids start in a process-unique
    /// namespace ([`handle_namespace`]) — a handle minted by one arena
    /// can never resolve against another.
    fn default() -> Self {
        Self {
            bufs: HashMap::new(),
            next_id: handle_namespace(),
            stats: TransferStats::default(),
        }
    }
}

impl HostArena {
    /// Uncounted read of a buffer view (backend-internal access: for the
    /// identity backend, compute *is* host compute, not a transfer).
    pub(crate) fn read_raw(&self, buf: DeviceBuf, dst: &mut [u64]) {
        assert!(dst.len() <= buf.len, "read exceeds device buffer");
        let v = self.bufs.get(&buf.id).expect("freed or foreign DeviceBuf");
        dst.copy_from_slice(&v[buf.base..buf.base + dst.len()]);
    }

    /// Uncounted write of a buffer view.
    pub(crate) fn write_raw(&mut self, buf: DeviceBuf, src: &[u64]) {
        assert!(src.len() <= buf.len, "write exceeds device buffer");
        let v = self
            .bufs
            .get_mut(&buf.id)
            .expect("freed or foreign DeviceBuf");
        v[buf.base..buf.base + src.len()].copy_from_slice(src);
    }

    /// Live allocations (leak checks in tests).
    pub fn live_buffers(&self) -> usize {
        self.bufs.len()
    }
}

impl DeviceMemory for HostArena {
    fn alloc(&mut self, words: usize) -> DeviceBuf {
        self.next_id += 1;
        self.stats.allocs += 1;
        self.bufs.insert(self.next_id, vec![0; words]);
        DeviceBuf {
            id: self.next_id,
            base: 0,
            len: words,
        }
    }

    fn upload(&mut self, dst: DeviceBuf, src: &[u64]) {
        self.stats.uploads += 1;
        self.stats.upload_words += src.len() as u64;
        self.write_raw(dst, src);
    }

    fn download(&mut self, src: DeviceBuf, dst: &mut [u64]) {
        assert!(dst.len() <= src.len, "download exceeds device buffer");
        self.stats.downloads += 1;
        self.stats.download_words += dst.len() as u64;
        self.read_raw(src, dst);
    }

    fn copy(&mut self, src: DeviceBuf, dst: DeviceBuf) {
        assert!(src.len <= dst.len, "device copy exceeds destination");
        self.stats.d2d_copies += 1;
        let mut tmp = vec![0u64; src.len];
        self.read_raw(src, &mut tmp);
        self.write_raw(dst, &tmp);
    }

    fn free(&mut self, buf: DeviceBuf) {
        // Sub-views share their parent's id; only whole-allocation handles
        // release storage.
        if self.bufs.remove(&buf.id).is_some() {
            self.stats.frees += 1;
        }
    }

    fn stats(&self) -> TransferStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TransferStats::default();
    }

    // The arena has no fault model, but a freed/foreign handle is still a
    // recoverable condition on the typed surface: pre-validate instead of
    // letting the infallible body panic.

    fn try_upload(&mut self, dst: DeviceBuf, src: &[u64]) -> Result<(), BackendError> {
        if !self.bufs.contains_key(&dst.id) {
            return Err(BackendError::Fatal { op: "upload" });
        }
        self.upload(dst, src);
        Ok(())
    }

    fn try_download(&mut self, src: DeviceBuf, dst: &mut [u64]) -> Result<(), BackendError> {
        if !self.bufs.contains_key(&src.id) {
            return Err(BackendError::Fatal { op: "download" });
        }
        self.download(src, dst);
        Ok(())
    }
}

/// Shared host reference semantics for the element-wise device operations
/// (`acc[i] *= rhs[i]` per row, plan strategies for the products). Every
/// backend's device kernels must match these bit for bit.
pub(crate) fn host_pointwise_rows(plan: &RingPlan, level: usize, acc: &mut [u64], rhs: &[u64]) {
    let n = plan.degree();
    for (r, (row, rhs_row)) in acc.chunks_exact_mut(n).zip(rhs.chunks_exact(n)).enumerate() {
        let s = plan.strategy(r % level);
        for (x, &y) in row.iter_mut().zip(rhs_row) {
            *x = s.mul(*x, y);
        }
    }
}

/// `acc[i] += x[i] * y[i]` per row (the key-switch accumulate step).
pub(crate) fn host_fma_rows(plan: &RingPlan, level: usize, acc: &mut [u64], x: &[u64], y: &[u64]) {
    let n = plan.degree();
    for (r, ((arow, xrow), yrow)) in acc
        .chunks_exact_mut(n)
        .zip(x.chunks_exact(n))
        .zip(y.chunks_exact(n))
        .enumerate()
    {
        let s = plan.strategy(r % level);
        let p = s.modulus();
        for ((a, &xv), &yv) in arow.iter_mut().zip(xrow).zip(yrow) {
            *a = add_mod(*a, s.mul(xv, yv), p);
        }
    }
}

/// `acc[i] = acc[i] ± rhs[i]` per row.
pub(crate) fn host_addsub_rows(
    plan: &RingPlan,
    level: usize,
    acc: &mut [u64],
    rhs: &[u64],
    subtract: bool,
) {
    let n = plan.degree();
    let primes = plan.ring().basis().primes();
    for (r, (row, rhs_row)) in acc.chunks_exact_mut(n).zip(rhs.chunks_exact(n)).enumerate() {
        let p = primes[r % level];
        for (x, &y) in row.iter_mut().zip(rhs_row) {
            *x = if subtract {
                sub_mod(*x, y, p)
            } else {
                add_mod(*x, y, p)
            };
        }
    }
}

/// Row-wise negation.
pub(crate) fn host_negate_rows(plan: &RingPlan, level: usize, data: &mut [u64]) {
    let n = plan.degree();
    let primes = plan.ring().basis().primes();
    for (r, row) in data.chunks_exact_mut(n).enumerate() {
        let p = primes[r % level];
        for x in row.iter_mut() {
            *x = neg_mod(*x, p);
        }
    }
}

/// Galois automorphism `X → X^g` (g odd) of a `level`-row coefficient
/// buffer: `dst[r·N + (i·g mod 2N)] = ±src[r·N + i]`, negated when the
/// exponent wraps past `N` (negacyclic: `X^N = −1`), with row `r` reduced
/// mod prime `r % level`. Out-of-place — the map is a permutation, so an
/// in-place gather would trample unread inputs.
pub(crate) fn host_automorphism_rows(
    plan: &RingPlan,
    level: usize,
    g: u64,
    src: &[u64],
    dst: &mut [u64],
) {
    let n = plan.degree();
    let two_n = 2 * n as u64;
    let g = g % two_n;
    assert_eq!(g % 2, 1, "Galois element must be odd");
    assert_eq!(src.len(), dst.len(), "operand shape mismatch");
    let primes = plan.ring().basis().primes();
    for (r, (out, row)) in dst.chunks_exact_mut(n).zip(src.chunks_exact(n)).enumerate() {
        let p = primes[r % level];
        for (i, &x) in row.iter().enumerate() {
            let idx = (i as u64 * g) % two_n;
            if idx < n as u64 {
                out[idx as usize] = x;
            } else {
                out[idx as usize - n] = neg_mod(x, p);
            }
        }
    }
}

/// CKKS mod-raise: re-embed one coefficient row (residues mod the first
/// prime `p_0`) into `to_level` rows of the full RNS basis via the
/// centered lift `v ↦ v` if `v ≤ p_0/2` else `v − p_0`. The lift is
/// exact — the output decrypts to the same small polynomial plus a
/// `p_0·I` overflow term, which is what `EvalMod` removes.
pub(crate) fn host_modraise_rows(plan: &RingPlan, to_level: usize, src: &[u64], dst: &mut [u64]) {
    let n = plan.degree();
    let primes = plan.ring().basis().primes();
    let p0 = primes[0];
    let half = p0 >> 1;
    assert_eq!(src.len(), n, "source must be one row");
    assert_eq!(dst.len(), to_level * n, "destination must be to_level x N");
    for (r, row) in dst.chunks_exact_mut(n).enumerate() {
        let p = primes[r % to_level];
        for (out, &v) in row.iter_mut().zip(src) {
            *out = if v <= half {
                v % p
            } else {
                neg_mod((p0 - v) % p, p)
            };
        }
    }
}

/// Gadget digit decomposition of one `level`-row coefficient polynomial
/// into a `level·digits`-polynomial buffer-of-digits: digit `(j, d)`
/// occupies polynomial slot `j·digits + d` as `level` **replicated** rows
/// of `(src_row_j >> (w·d)) & (2^w − 1)` (small digits are the same
/// residue mod every active prime). The layout matches what
/// `he-lite` key switching feeds to `Evaluator::forward_flat`.
pub(crate) fn host_decompose_rows(
    n: usize,
    level: usize,
    digits: usize,
    gadget_bits: u32,
    src: &[u64],
    dst: &mut [u64],
) {
    assert_eq!(src.len(), level * n, "source must be level x N");
    assert_eq!(
        dst.len(),
        level * digits * level * n,
        "digit buffer must be level*digits polynomials of level rows"
    );
    let mask = (1u64 << gadget_bits) - 1;
    for j in 0..level {
        for d in 0..digits {
            let shift = gadget_bits * d as u32;
            let poly = (j * digits + d) * level * n;
            for rep in 0..level {
                for t in 0..n {
                    dst[poly + rep * n + t] = (src[j * n + t] >> shift) & mask;
                }
            }
        }
    }
}

/// A precomputed execution plan for one [`RnsRing`] (FFTW-style).
///
/// Construction resolves everything the backends would otherwise redo per
/// call: the twiddle tables (already laid out as per-stage
/// `(value, companion)` slice-pairs inside [`NttTable`]), workspace sizing
/// for the fused multiply path, and the per-prime [`PointwiseStrategy`].
/// Plans are cheap to clone and thread-safe; prefer
/// [`RnsRing::plan`], which memoizes the strategy choice on the ring.
///
/// # Example
///
/// ```
/// use ntt_core::backend::RingPlan;
/// use ntt_core::RnsRing;
///
/// let ring = RnsRing::new(32, ntt_math::ntt_primes(59, 64, 2))?;
/// let plan = RingPlan::new(&ring);
/// assert_eq!(plan.degree(), 32);
/// // Two scratch rows per limb for the fused multiply path:
/// assert_eq!(plan.workspace_words(plan.np()), 2 * 2 * 32);
/// for i in 0..plan.np() {
///     assert_eq!(plan.strategy(i).modulus(), plan.table(i).modulus());
/// }
/// # Ok::<(), ntt_core::RingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RingPlan {
    ring: RnsRing,
    strategy: Arc<[PointwiseStrategy]>,
}

impl RingPlan {
    /// Plan for a ring (delegates to the ring's memoized plan cache).
    pub fn new(ring: &RnsRing) -> Self {
        ring.plan()
    }

    pub(crate) fn from_parts(ring: RnsRing, strategy: Arc<[PointwiseStrategy]>) -> Self {
        Self { ring, strategy }
    }

    /// The planned ring.
    #[inline]
    pub fn ring(&self) -> &RnsRing {
        &self.ring
    }

    /// Ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.ring.degree()
    }

    /// Number of primes in the full basis.
    #[inline]
    pub fn np(&self) -> usize {
        self.ring.np()
    }

    /// Twiddle table for prime `i` (per-stage slice-pairs, bit-reversed).
    #[inline]
    pub fn table(&self, i: usize) -> &NttTable {
        self.ring.ring(i).table()
    }

    /// The pointwise reduction strategy chosen for prime `i` at plan time.
    #[inline]
    pub fn strategy(&self, i: usize) -> &PointwiseStrategy {
        &self.strategy[i]
    }

    /// All per-prime strategies.
    #[inline]
    pub fn strategies(&self) -> &[PointwiseStrategy] {
        &self.strategy
    }

    /// Scratch words the fused multiply path needs for a `rows`-row batch
    /// (two operand staging rows per limb) — backends size their
    /// workspaces from this.
    #[inline]
    pub fn workspace_words(&self, rows: usize) -> usize {
        2 * rows * self.degree()
    }
}

/// An execution substrate for batched RNS NTT workloads.
///
/// All operations are *batched*: one call covers every limb in the
/// [`LimbBatch`], which is where both the CPU engine (residue-parallel
/// threading, one dispatch) and the GPU kernels (one launch over the
/// `np`-polynomial batch, §III of the paper) get their throughput.
///
/// Contracts shared by all implementations:
///
/// * residues are **canonical** (`< p`) on entry and exit of every call;
/// * forward transforms take natural-order input to bit-reversed
///   evaluations; inverse transforms undo exactly that;
/// * outputs are **bit-identical across backends** — the conformance suite
///   (`tests/backend_conformance.rs`) pins `CpuBackend` and the simulated
///   GPU backend to each other exactly.
///
/// # Example
///
/// ```
/// use ntt_core::backend::{CpuBackend, LimbBatch, NttBackend, RingPlan};
/// use ntt_core::{RnsPoly, RnsRing};
///
/// let ring = RnsRing::new(8, ntt_math::ntt_primes(59, 16, 2))?;
/// let plan = RingPlan::new(&ring);
/// let mut be = CpuBackend::default();
/// let mut x = RnsPoly::from_i64_coeffs(&ring, &[1, 2, 3]);
/// let orig = x.clone();
/// be.forward_batch(&plan, LimbBatch::from_poly(&mut x));
/// be.inverse_batch(&plan, LimbBatch::from_poly(&mut x));
/// assert_eq!(x.flat(), orig.flat()); // round trip is exact
/// # Ok::<(), ntt_core::RingError>(())
/// ```
pub trait NttBackend: Send {
    /// Short label for reports and conformance-test diagnostics.
    fn name(&self) -> &'static str;

    /// Forward-NTT every row of the batch in place.
    fn forward_batch(&mut self, plan: &RingPlan, batch: LimbBatch<'_>);

    /// Inverse-NTT every row of the batch in place.
    fn inverse_batch(&mut self, plan: &RingPlan, batch: LimbBatch<'_>);

    /// Element-wise product in the evaluation domain: `acc[i] *= rhs[i]`
    /// per row, reduced mod the row's prime with the plan's strategy.
    /// `rhs` must have the batch's exact shape.
    fn pointwise_batch(&mut self, plan: &RingPlan, acc: LimbBatch<'_>, rhs: &[u64]);

    /// Fused negacyclic products, one per row triple: `out = a ·̄ b` where
    /// all three buffers share the batch's shape and hold coefficient-form
    /// rows. Implementations fuse forward transforms, pointwise reduction
    /// and the inverse transform however their substrate prefers.
    fn multiply_batch(&mut self, plan: &RingPlan, a: &[u64], b: &[u64], out: LimbBatch<'_>);

    // ---- Device residency -------------------------------------------------

    /// This backend's device memory. Device-resident [`RnsPoly`]s embed a
    /// clone of this handle, which is how a host read can lazily download
    /// without holding the backend.
    fn memory(&self) -> SharedDeviceMemory;

    /// A new executor sharing this backend's device memory (and any cached
    /// device tables), for per-thread evaluator pools: forks execute
    /// concurrently but see one device, so resident data is visible to all
    /// of them.
    fn fork(&self) -> Box<dyn NttBackend>;

    /// Whether callers should keep polynomials device-resident by default.
    /// `false` for [`CpuBackend`] (host memory *is* the identity device;
    /// staging through the arena would only add memcpys), `true` for
    /// backends with a real host↔device boundary.
    fn prefers_residency(&self) -> bool {
        false
    }

    /// Route device-memory traffic initiated *outside* the backend — lazy
    /// polynomial uploads/downloads through [`NttBackend::memory`] — to
    /// this executor's stream in the backend's overlapped-time model.
    /// Called by the [`Evaluator`] before such transfers; backends without
    /// a stream model (e.g. [`CpuBackend`]) ignore it. Purely a
    /// performance-model hint: results never depend on it.
    fn bind_stream(&self) {}

    /// Stage a host slice into a freshly allocated device buffer that a
    /// device op on this executor is about to read (the mixed-residency
    /// path of [`Evaluator::multiply`]). The default allocates and
    /// uploads through [`NttBackend::memory`] on whatever stream is
    /// bound — correct, but it serializes compute behind the copy.
    /// Backends with a stream model override this to issue the upload on
    /// a dedicated copy stream and fence the consuming compute stream on
    /// its completion event, so queued compute overlaps the transfer.
    /// Purely a performance-model hint: results never depend on it. The
    /// caller owns the returned buffer and must free it.
    fn stage_upload(&mut self, data: &[u64]) -> DeviceBuf {
        let mem = self.memory();
        let mut guard = lock_memory(&mem);
        let buf = guard.alloc(data.len());
        guard.upload(buf, data);
        buf
    }

    /// Forward-NTT a device-resident batch in place (`buf` = rows × N
    /// words, row `r` mod prime `r % level`). Default: staged through
    /// [`NttBackend::memory`] with counted transfers — override to stay on
    /// the device.
    fn dev_forward(&mut self, plan: &RingPlan, buf: DeviceBuf, level: usize) {
        let mut host = vec![0u64; buf.len()];
        lock_memory(&self.memory()).download(buf, &mut host);
        self.forward_batch(plan, LimbBatch::new(&mut host, plan.degree(), level));
        lock_memory(&self.memory()).upload(buf, &host);
    }

    /// Inverse counterpart of [`NttBackend::dev_forward`].
    fn dev_inverse(&mut self, plan: &RingPlan, buf: DeviceBuf, level: usize) {
        let mut host = vec![0u64; buf.len()];
        lock_memory(&self.memory()).download(buf, &mut host);
        self.inverse_batch(plan, LimbBatch::new(&mut host, plan.degree(), level));
        lock_memory(&self.memory()).upload(buf, &host);
    }

    /// Device-resident fused negacyclic multiply: `out = a ·̄ b` for
    /// coefficient-form resident operands (all three buffers share the
    /// rows × N shape).
    fn dev_multiply(
        &mut self,
        plan: &RingPlan,
        a: DeviceBuf,
        b: DeviceBuf,
        out: DeviceBuf,
        level: usize,
    ) {
        let (mut ha, mut hb) = (vec![0u64; a.len()], vec![0u64; b.len()]);
        {
            let mem = self.memory();
            let mut m = lock_memory(&mem);
            m.download(a, &mut ha);
            m.download(b, &mut hb);
        }
        let mut ho = vec![0u64; out.len()];
        self.multiply_batch(
            plan,
            &ha,
            &hb,
            LimbBatch::new(&mut ho, plan.degree(), level),
        );
        lock_memory(&self.memory()).upload(out, &ho);
    }

    /// Device-resident pointwise product `acc[i] *= rhs[i]` per row.
    fn dev_pointwise(&mut self, plan: &RingPlan, acc: DeviceBuf, rhs: DeviceBuf, level: usize) {
        let (mut ha, mut hr) = (vec![0u64; acc.len()], vec![0u64; rhs.len()]);
        {
            let mem = self.memory();
            let mut m = lock_memory(&mem);
            m.download(acc, &mut ha);
            m.download(rhs, &mut hr);
        }
        host_pointwise_rows(plan, level, &mut ha, &hr);
        lock_memory(&self.memory()).upload(acc, &ha);
    }

    /// Device-resident fused multiply-accumulate `acc[i] += x[i] * y[i]`
    /// per row (the key-switch inner product).
    fn dev_fma(
        &mut self,
        plan: &RingPlan,
        acc: DeviceBuf,
        x: DeviceBuf,
        y: DeviceBuf,
        level: usize,
    ) {
        let mut ha = vec![0u64; acc.len()];
        let (mut hx, mut hy) = (vec![0u64; x.len()], vec![0u64; y.len()]);
        {
            let mem = self.memory();
            let mut m = lock_memory(&mem);
            m.download(acc, &mut ha);
            m.download(x, &mut hx);
            m.download(y, &mut hy);
        }
        host_fma_rows(plan, level, &mut ha, &hx, &hy);
        lock_memory(&self.memory()).upload(acc, &ha);
    }

    /// Device-resident row-wise sum `acc[i] += rhs[i]`.
    fn dev_add(&mut self, plan: &RingPlan, acc: DeviceBuf, rhs: DeviceBuf, level: usize) {
        self.dev_addsub(plan, acc, rhs, level, false);
    }

    /// Device-resident row-wise difference `acc[i] -= rhs[i]`.
    fn dev_sub(&mut self, plan: &RingPlan, acc: DeviceBuf, rhs: DeviceBuf, level: usize) {
        self.dev_addsub(plan, acc, rhs, level, true);
    }

    /// Shared add/sub implementation hook (overriding [`NttBackend::dev_add`]
    /// / [`NttBackend::dev_sub`] individually is equivalent).
    fn dev_addsub(
        &mut self,
        plan: &RingPlan,
        acc: DeviceBuf,
        rhs: DeviceBuf,
        level: usize,
        subtract: bool,
    ) {
        let (mut ha, mut hr) = (vec![0u64; acc.len()], vec![0u64; rhs.len()]);
        {
            let mem = self.memory();
            let mut m = lock_memory(&mem);
            m.download(acc, &mut ha);
            m.download(rhs, &mut hr);
        }
        host_addsub_rows(plan, level, &mut ha, &hr, subtract);
        lock_memory(&self.memory()).upload(acc, &ha);
    }

    /// Device-resident negation of every row.
    fn dev_negate(&mut self, plan: &RingPlan, buf: DeviceBuf, level: usize) {
        let mut host = vec![0u64; buf.len()];
        lock_memory(&self.memory()).download(buf, &mut host);
        host_negate_rows(plan, level, &mut host);
        lock_memory(&self.memory()).upload(buf, &host);
    }

    /// Device-resident CKKS rescale step on a `level`-row coefficient
    /// buffer: rows `0..level-1` become `(row_i − row_last)·p_last^{-1}
    /// mod p_i`; the last row is left as garbage (the caller drops it from
    /// the logical view).
    fn dev_rescale(&mut self, plan: &RingPlan, buf: DeviceBuf, level: usize) {
        let mut host = vec![0u64; buf.len()];
        lock_memory(&self.memory()).download(buf, &mut host);
        crate::poly::rescale_rows(
            plan.ring().basis().primes(),
            plan.degree(),
            level,
            &mut host,
        );
        lock_memory(&self.memory()).upload(buf, &host);
    }

    /// Device-resident gadget digit decomposition (see
    /// [`host_decompose_rows`] for the exact layout): `src` holds `level`
    /// coefficient rows, `dst` receives `level·digits` stacked polynomials
    /// of `level` replicated digit rows each.
    fn dev_decompose(
        &mut self,
        plan: &RingPlan,
        src: DeviceBuf,
        dst: DeviceBuf,
        level: usize,
        digits: usize,
        gadget_bits: u32,
    ) {
        let (mut hs, mut hd) = (vec![0u64; src.len()], vec![0u64; dst.len()]);
        lock_memory(&self.memory()).download(src, &mut hs);
        host_decompose_rows(plan.degree(), level, digits, gadget_bits, &hs, &mut hd);
        lock_memory(&self.memory()).upload(dst, &hd);
    }

    /// Device-resident CKKS mod-raise (see [`host_modraise_rows`] for the
    /// lift): `src` holds one coefficient row mod `p_0`, `dst` receives
    /// `to_level` re-embedded rows of the full basis.
    fn dev_modraise(&mut self, plan: &RingPlan, src: DeviceBuf, dst: DeviceBuf, to_level: usize) {
        let (mut hs, mut hd) = (vec![0u64; src.len()], vec![0u64; dst.len()]);
        lock_memory(&self.memory()).download(src, &mut hs);
        host_modraise_rows(plan, to_level, &hs, &mut hd);
        lock_memory(&self.memory()).upload(dst, &hd);
    }

    /// Device-resident Galois automorphism `X → X^g` (see
    /// [`host_automorphism_rows`] for the index map): `src` holds `level`
    /// coefficient rows, `dst` receives the permuted (sign-wrapped) rows.
    fn dev_automorphism(
        &mut self,
        plan: &RingPlan,
        src: DeviceBuf,
        dst: DeviceBuf,
        level: usize,
        g: u64,
    ) {
        let (mut hs, mut hd) = (vec![0u64; src.len()], vec![0u64; dst.len()]);
        lock_memory(&self.memory()).download(src, &mut hs);
        host_automorphism_rows(plan, level, g, &hs, &mut hd);
        lock_memory(&self.memory()).upload(dst, &hd);
    }

    // ---- Fallible surface -------------------------------------------------
    //
    // The `try_*` variants of the hot ops return a classified
    // [`BackendError`] instead of panicking, for callers that can retry,
    // re-fork, or degrade (the serving stack). Defaults delegate to the
    // infallible methods — the CPU backend never fails, so it inherits
    // them unchanged; backends with a fault model (the simulated GPU
    // under an armed `FaultPlan`) override them with fault gates that
    // fire *before* any data moves, keeping a failed call retry-safe.

    /// Fallible [`NttBackend::forward_batch`]. On `Err` the batch is
    /// unchanged.
    fn try_forward_batch(
        &mut self,
        plan: &RingPlan,
        batch: LimbBatch<'_>,
    ) -> Result<(), BackendError> {
        self.forward_batch(plan, batch);
        Ok(())
    }

    /// Fallible [`NttBackend::inverse_batch`]. On `Err` the batch is
    /// unchanged.
    fn try_inverse_batch(
        &mut self,
        plan: &RingPlan,
        batch: LimbBatch<'_>,
    ) -> Result<(), BackendError> {
        self.inverse_batch(plan, batch);
        Ok(())
    }

    /// Fallible [`NttBackend::pointwise_batch`]. On `Err` the
    /// accumulator is unchanged.
    fn try_pointwise_batch(
        &mut self,
        plan: &RingPlan,
        acc: LimbBatch<'_>,
        rhs: &[u64],
    ) -> Result<(), BackendError> {
        self.pointwise_batch(plan, acc, rhs);
        Ok(())
    }

    /// Fallible [`NttBackend::multiply_batch`]. On `Err` the output
    /// batch is unchanged.
    fn try_multiply_batch(
        &mut self,
        plan: &RingPlan,
        a: &[u64],
        b: &[u64],
        out: LimbBatch<'_>,
    ) -> Result<(), BackendError> {
        self.multiply_batch(plan, a, b, out);
        Ok(())
    }

    /// Fallible [`NttBackend::dev_forward`]. On `Err` the device buffer
    /// is unchanged.
    fn try_dev_forward(
        &mut self,
        plan: &RingPlan,
        buf: DeviceBuf,
        level: usize,
    ) -> Result<(), BackendError> {
        self.dev_forward(plan, buf, level);
        Ok(())
    }

    /// Fallible [`NttBackend::dev_inverse`]. On `Err` the device buffer
    /// is unchanged.
    fn try_dev_inverse(
        &mut self,
        plan: &RingPlan,
        buf: DeviceBuf,
        level: usize,
    ) -> Result<(), BackendError> {
        self.dev_inverse(plan, buf, level);
        Ok(())
    }

    /// Fallible [`NttBackend::dev_multiply`]. On `Err` all three
    /// buffers are unchanged.
    fn try_dev_multiply(
        &mut self,
        plan: &RingPlan,
        a: DeviceBuf,
        b: DeviceBuf,
        out: DeviceBuf,
        level: usize,
    ) -> Result<(), BackendError> {
        self.dev_multiply(plan, a, b, out, level);
        Ok(())
    }

    /// Fallible [`NttBackend::dev_pointwise`]. On `Err` the accumulator
    /// is unchanged.
    fn try_dev_pointwise(
        &mut self,
        plan: &RingPlan,
        acc: DeviceBuf,
        rhs: DeviceBuf,
        level: usize,
    ) -> Result<(), BackendError> {
        self.dev_pointwise(plan, acc, rhs, level);
        Ok(())
    }

    /// Fallible [`NttBackend::dev_fma`]. On `Err` the accumulator is
    /// unchanged.
    fn try_dev_fma(
        &mut self,
        plan: &RingPlan,
        acc: DeviceBuf,
        x: DeviceBuf,
        y: DeviceBuf,
        level: usize,
    ) -> Result<(), BackendError> {
        self.dev_fma(plan, acc, x, y, level);
        Ok(())
    }

    /// Fallible [`NttBackend::dev_rescale`]. On `Err` the buffer is
    /// unchanged.
    fn try_dev_rescale(
        &mut self,
        plan: &RingPlan,
        buf: DeviceBuf,
        level: usize,
    ) -> Result<(), BackendError> {
        self.dev_rescale(plan, buf, level);
        Ok(())
    }

    /// Fallible [`NttBackend::dev_decompose`]. On `Err` the destination
    /// is unchanged.
    fn try_dev_decompose(
        &mut self,
        plan: &RingPlan,
        src: DeviceBuf,
        dst: DeviceBuf,
        level: usize,
        digits: usize,
        gadget_bits: u32,
    ) -> Result<(), BackendError> {
        self.dev_decompose(plan, src, dst, level, digits, gadget_bits);
        Ok(())
    }

    /// Fallible [`NttBackend::dev_modraise`]. On `Err` the destination
    /// is unchanged.
    fn try_dev_modraise(
        &mut self,
        plan: &RingPlan,
        src: DeviceBuf,
        dst: DeviceBuf,
        to_level: usize,
    ) -> Result<(), BackendError> {
        self.dev_modraise(plan, src, dst, to_level);
        Ok(())
    }

    /// Fallible [`NttBackend::dev_automorphism`]. On `Err` the
    /// destination is unchanged.
    fn try_dev_automorphism(
        &mut self,
        plan: &RingPlan,
        src: DeviceBuf,
        dst: DeviceBuf,
        level: usize,
        g: u64,
    ) -> Result<(), BackendError> {
        self.dev_automorphism(plan, src, dst, level, g);
        Ok(())
    }
}

/// The reference backend: the fused lazy-reduction CPU engine
/// ([`NttExecutor`]) behind the [`NttBackend`] vocabulary.
///
/// Thread policy comes from the executor ([`ThreadPolicy`], env-tunable
/// via `NTT_WARP_THREADS`); the workspace is grow-only, so steady-state
/// batches allocate nothing.
///
/// Device memory is the identity [`HostArena`]: "resident" buffers are
/// host vectors and the device operations run the same executor directly
/// on them (no staging transfers), so the residency machinery is fully
/// exercisable — and conformance-testable against the simulated GPU —
/// on a host-only build. [`NttBackend::prefers_residency`] stays `false`:
/// routine CPU callers gain nothing from staging host data through the
/// arena.
#[derive(Debug)]
pub struct CpuBackend {
    exec: NttExecutor,
    arena: Arc<Mutex<HostArena>>,
    /// Grow-only staging rows for arena-resident compute (three operand
    /// slots: acc/out, x, y).
    stage: [Vec<u64>; 3],
}

impl Default for CpuBackend {
    fn default() -> Self {
        Self::new(ThreadPolicy::default())
    }
}

impl CpuBackend {
    /// CPU backend with an explicit thread policy.
    pub fn new(policy: ThreadPolicy) -> Self {
        Self {
            exec: NttExecutor::new(policy),
            arena: Arc::new(Mutex::new(HostArena::default())),
            stage: Default::default(),
        }
    }

    /// CPU backend configured from `NTT_WARP_THREADS`.
    pub fn from_env() -> Self {
        Self::new(ThreadPolicy::from_env())
    }

    /// The wrapped executor (e.g. for workspace accounting).
    #[inline]
    pub fn executor(&self) -> &NttExecutor {
        &self.exec
    }

    /// Mutable access to the wrapped executor (single-prime convenience
    /// paths route through here).
    #[inline]
    pub fn executor_mut(&mut self) -> &mut NttExecutor {
        &mut self.exec
    }

    fn arena(&self) -> std::sync::MutexGuard<'_, HostArena> {
        self.arena
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Pull an arena buffer into staging slot `slot` (uncounted: identity
    /// memory, this *is* the device-side access).
    fn stage_in(&mut self, slot: usize, buf: DeviceBuf) {
        let mut tmp = std::mem::take(&mut self.stage[slot]);
        tmp.clear();
        tmp.resize(buf.len(), 0);
        self.arena().read_raw(buf, &mut tmp);
        self.stage[slot] = tmp;
    }

    /// Write staging slot `slot` back to its arena buffer.
    fn stage_out(&mut self, slot: usize, buf: DeviceBuf) {
        let tmp = std::mem::take(&mut self.stage[slot]);
        self.arena().write_raw(buf, &tmp);
        self.stage[slot] = tmp;
    }
}

impl NttBackend for CpuBackend {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn forward_batch(&mut self, plan: &RingPlan, mut batch: LimbBatch<'_>) {
        let level = batch.level();
        self.exec
            .transform_rows_of(plan.ring(), level, batch.data(), true);
    }

    fn inverse_batch(&mut self, plan: &RingPlan, mut batch: LimbBatch<'_>) {
        let level = batch.level();
        self.exec
            .transform_rows_of(plan.ring(), level, batch.data(), false);
    }

    fn pointwise_batch(&mut self, plan: &RingPlan, mut acc: LimbBatch<'_>, rhs: &[u64]) {
        let (n, level) = (acc.n(), acc.level());
        assert_eq!(acc.as_slice().len(), rhs.len(), "operand shape mismatch");
        for (r, (row, rhs_row)) in acc
            .data()
            .chunks_exact_mut(n)
            .zip(rhs.chunks_exact(n))
            .enumerate()
        {
            match plan.strategy(r % level) {
                PointwiseStrategy::Barrett(br) => {
                    for (x, &y) in row.iter_mut().zip(rhs_row) {
                        *x = br.mul(*x, y);
                    }
                }
                PointwiseStrategy::Montgomery(m) => {
                    for (x, &y) in row.iter_mut().zip(rhs_row) {
                        *x = m.mul_plain(*x, y);
                    }
                }
            }
        }
    }

    fn multiply_batch(&mut self, plan: &RingPlan, a: &[u64], b: &[u64], mut out: LimbBatch<'_>) {
        let level = out.level();
        self.exec.multiply_rows_of(
            plan.ring(),
            level,
            a,
            b,
            out.data(),
            Some(plan.strategies()),
        );
    }

    fn memory(&self) -> SharedDeviceMemory {
        self.arena.clone()
    }

    fn fork(&self) -> Box<dyn NttBackend> {
        Box::new(CpuBackend {
            exec: NttExecutor::new(self.exec.policy()),
            arena: Arc::clone(&self.arena),
            stage: Default::default(),
        })
    }

    fn dev_forward(&mut self, plan: &RingPlan, buf: DeviceBuf, level: usize) {
        self.stage_in(0, buf);
        let mut tmp = std::mem::take(&mut self.stage[0]);
        self.exec
            .transform_rows_of(plan.ring(), level, &mut tmp, true);
        self.stage[0] = tmp;
        self.stage_out(0, buf);
    }

    fn dev_inverse(&mut self, plan: &RingPlan, buf: DeviceBuf, level: usize) {
        self.stage_in(0, buf);
        let mut tmp = std::mem::take(&mut self.stage[0]);
        self.exec
            .transform_rows_of(plan.ring(), level, &mut tmp, false);
        self.stage[0] = tmp;
        self.stage_out(0, buf);
    }

    fn dev_multiply(
        &mut self,
        plan: &RingPlan,
        a: DeviceBuf,
        b: DeviceBuf,
        out: DeviceBuf,
        level: usize,
    ) {
        self.stage_in(1, a);
        self.stage_in(2, b);
        let mut o = std::mem::take(&mut self.stage[0]);
        o.clear();
        o.resize(out.len(), 0);
        self.exec.multiply_rows_of(
            plan.ring(),
            level,
            &self.stage[1],
            &self.stage[2],
            &mut o,
            Some(plan.strategies()),
        );
        self.stage[0] = o;
        self.stage_out(0, out);
    }

    fn dev_pointwise(&mut self, plan: &RingPlan, acc: DeviceBuf, rhs: DeviceBuf, level: usize) {
        self.stage_in(0, acc);
        self.stage_in(1, rhs);
        let mut a = std::mem::take(&mut self.stage[0]);
        host_pointwise_rows(plan, level, &mut a, &self.stage[1]);
        self.stage[0] = a;
        self.stage_out(0, acc);
    }

    fn dev_fma(
        &mut self,
        plan: &RingPlan,
        acc: DeviceBuf,
        x: DeviceBuf,
        y: DeviceBuf,
        level: usize,
    ) {
        self.stage_in(0, acc);
        self.stage_in(1, x);
        self.stage_in(2, y);
        let mut a = std::mem::take(&mut self.stage[0]);
        host_fma_rows(plan, level, &mut a, &self.stage[1], &self.stage[2]);
        self.stage[0] = a;
        self.stage_out(0, acc);
    }

    fn dev_addsub(
        &mut self,
        plan: &RingPlan,
        acc: DeviceBuf,
        rhs: DeviceBuf,
        level: usize,
        subtract: bool,
    ) {
        self.stage_in(0, acc);
        self.stage_in(1, rhs);
        let mut a = std::mem::take(&mut self.stage[0]);
        host_addsub_rows(plan, level, &mut a, &self.stage[1], subtract);
        self.stage[0] = a;
        self.stage_out(0, acc);
    }

    fn dev_negate(&mut self, plan: &RingPlan, buf: DeviceBuf, level: usize) {
        self.stage_in(0, buf);
        let mut a = std::mem::take(&mut self.stage[0]);
        host_negate_rows(plan, level, &mut a);
        self.stage[0] = a;
        self.stage_out(0, buf);
    }

    fn dev_rescale(&mut self, plan: &RingPlan, buf: DeviceBuf, level: usize) {
        self.stage_in(0, buf);
        let mut a = std::mem::take(&mut self.stage[0]);
        crate::poly::rescale_rows(plan.ring().basis().primes(), plan.degree(), level, &mut a);
        self.stage[0] = a;
        self.stage_out(0, buf);
    }

    fn dev_decompose(
        &mut self,
        plan: &RingPlan,
        src: DeviceBuf,
        dst: DeviceBuf,
        level: usize,
        digits: usize,
        gadget_bits: u32,
    ) {
        self.stage_in(1, src);
        let mut d = std::mem::take(&mut self.stage[0]);
        d.clear();
        d.resize(dst.len(), 0);
        host_decompose_rows(
            plan.degree(),
            level,
            digits,
            gadget_bits,
            &self.stage[1],
            &mut d,
        );
        self.stage[0] = d;
        self.stage_out(0, dst);
    }

    fn dev_automorphism(
        &mut self,
        plan: &RingPlan,
        src: DeviceBuf,
        dst: DeviceBuf,
        level: usize,
        g: u64,
    ) {
        self.stage_in(1, src);
        let mut d = std::mem::take(&mut self.stage[0]);
        d.clear();
        d.resize(dst.len(), 0);
        host_automorphism_rows(plan, level, g, &self.stage[1], &mut d);
        self.stage[0] = d;
        self.stage_out(0, dst);
    }

    fn dev_modraise(&mut self, plan: &RingPlan, src: DeviceBuf, dst: DeviceBuf, to_level: usize) {
        self.stage_in(1, src);
        let mut d = std::mem::take(&mut self.stage[0]);
        d.clear();
        d.resize(dst.len(), 0);
        host_modraise_rows(plan, to_level, &self.stage[1], &mut d);
        self.stage[0] = d;
        self.stage_out(0, dst);
    }
}

thread_local! {
    static DEFAULT_BACKEND: RefCell<CpuBackend> = RefCell::new(CpuBackend::from_env());
}

/// Run `f` with this thread's default [`CpuBackend`] (thread policy from
/// `NTT_WARP_THREADS`, workspace persisted across calls). The ring-level
/// convenience APIs ([`RnsRing::multiply`], [`RnsPoly::to_evaluation`], …)
/// route through here, so ordinary callers get plan-based batched
/// execution without holding an [`Evaluator`].
///
/// `f` must not itself re-enter this function (the backend is held in a
/// `RefCell`).
pub fn with_default_backend<R>(f: impl FnOnce(&mut CpuBackend) -> R) -> R {
    DEFAULT_BACKEND.with(|b| f(&mut b.borrow_mut()))
}

/// A backend-generic driver: one [`RingPlan`] plus one boxed
/// [`NttBackend`], with polynomial-level operations on top of the batched
/// trait vocabulary.
///
/// This is the object `he-lite` holds; swapping the execution substrate is
/// a one-line constructor change:
///
/// ```
/// use ntt_core::backend::{CpuBackend, Evaluator};
/// use ntt_core::{RnsPoly, RnsRing};
///
/// let ring = RnsRing::new(16, ntt_math::ntt_primes(59, 32, 2))?;
/// // let mut ev = Evaluator::with_backend(&ring, Box::new(SimBackend::titan_v()));
/// let mut ev = Evaluator::with_backend(&ring, Box::new(CpuBackend::default()));
///
/// let mut x = RnsPoly::from_i64_coeffs(&ring, &[2, 0, 1]);
/// ev.to_evaluation(&mut x);
/// ev.to_coefficient(&mut x);
/// assert_eq!(x.coefficient_centered(&ring, 2), Some(1));
/// # Ok::<(), ntt_core::RingError>(())
/// ```
pub struct Evaluator {
    plan: RingPlan,
    backend: Box<dyn NttBackend>,
    /// Grow-only device scratch for the key-switch buffer-of-digits
    /// (allocated in the backend's memory; freed on drop).
    dev_scratch: Option<DeviceBuf>,
}

impl Drop for Evaluator {
    fn drop(&mut self) {
        if let Some(buf) = self.dev_scratch.take() {
            lock_memory(&self.backend.memory()).free(buf);
        }
    }
}

impl std::fmt::Debug for Evaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Evaluator")
            .field("backend", &self.backend.name())
            .field("degree", &self.plan.degree())
            .field("np", &self.plan.np())
            .finish()
    }
}

impl Evaluator {
    /// Pair an existing plan with a backend.
    pub fn new(plan: RingPlan, backend: Box<dyn NttBackend>) -> Self {
        Self {
            plan,
            backend,
            dev_scratch: None,
        }
    }

    /// Evaluator over `ring` with the given backend (plans the ring).
    pub fn with_backend(ring: &RnsRing, backend: Box<dyn NttBackend>) -> Self {
        Self::new(ring.plan(), backend)
    }

    /// Evaluator over `ring` with the default CPU backend.
    pub fn cpu(ring: &RnsRing) -> Self {
        Self::with_backend(ring, Box::new(CpuBackend::from_env()))
    }

    /// The plan in force.
    #[inline]
    pub fn plan(&self) -> &RingPlan {
        &self.plan
    }

    /// The planned ring.
    #[inline]
    pub fn ring(&self) -> &RnsRing {
        self.plan.ring()
    }

    /// The backend's label.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The backend's device memory handle.
    pub fn memory(&self) -> SharedDeviceMemory {
        self.backend.memory()
    }

    /// Whether this evaluator keeps polynomials device-resident by default
    /// (see [`NttBackend::prefers_residency`]).
    pub fn prefers_residency(&self) -> bool {
        self.backend.prefers_residency()
    }

    /// The backend's transfer ledger.
    pub fn transfer_stats(&self) -> TransferStats {
        lock_memory(&self.backend.memory()).stats()
    }

    /// Upload `poly` into this backend's device memory (one counted
    /// transfer if the host copy is the fresh one; a no-op if the poly is
    /// already resident and clean here). From then on every evaluator
    /// operation on it runs device-side.
    pub fn make_resident(&mut self, poly: &mut RnsPoly) {
        self.backend.bind_stream();
        let mem = self.backend.memory();
        poly.make_resident_in(&mem);
    }

    /// A zero polynomial born **mirrored**: zeroed device buffer + zeroed
    /// host rows, in sync, no transfer charged (allocation is not an
    /// upload). Accumulators in device-resident chains start here.
    pub fn zero_resident(&mut self, level: usize, repr: Representation) -> RnsPoly {
        self.backend.bind_stream();
        let mut poly = RnsPoly::zero_with_repr(self.plan.ring(), level, repr);
        let mem = self.backend.memory();
        let buf = lock_memory(&mem).alloc(level * self.plan.degree());
        poly.adopt_mirror(&mem, buf);
        poly
    }

    /// `poly`'s active device view if it is resident **in this backend's
    /// memory** with an up-to-date device copy.
    fn dev_buf(&self, poly: &RnsPoly) -> Option<DeviceBuf> {
        poly.device_buf_in(&self.backend.memory())
    }

    /// Dispatch guard for in-place ops: if `poly` has a mirror in this
    /// backend's memory, flush any host-side edits to the device and hand
    /// back its buffer (residency is sticky — mirrored polys stay on the
    /// device). `None` → caller runs the host path.
    fn device_target(&mut self, poly: &mut RnsPoly) -> Option<DeviceBuf> {
        let mem = self.backend.memory();
        if !poly.has_mirror_in(&mem) {
            return None;
        }
        poly.make_resident_in(&mem); // flush host_dirty, if any
        Some(poly.device_buf_in(&mem).expect("just flushed"))
    }

    /// Forward-transform a polynomial (no-op if already in evaluation
    /// form). Device-resident polynomials are transformed on the device;
    /// host polynomials through the batched host path.
    pub fn to_evaluation(&mut self, poly: &mut RnsPoly) {
        if poly.repr() == Representation::Evaluation {
            return;
        }
        if let Some(buf) = self.device_target(poly) {
            self.backend.dev_forward(&self.plan, buf, poly.level());
            poly.mark_device_dirty();
        } else {
            poly.sync();
            self.backend
                .forward_batch(&self.plan, LimbBatch::from_poly(poly));
        }
        poly.set_repr(Representation::Evaluation);
    }

    /// Inverse-transform a polynomial (no-op if already in coefficient
    /// form).
    pub fn to_coefficient(&mut self, poly: &mut RnsPoly) {
        if poly.repr() == Representation::Coefficient {
            return;
        }
        if let Some(buf) = self.device_target(poly) {
            self.backend.dev_inverse(&self.plan, buf, poly.level());
            poly.mark_device_dirty();
        } else {
            poly.sync();
            self.backend
                .inverse_batch(&self.plan, LimbBatch::from_poly(poly));
        }
        poly.set_repr(Representation::Coefficient);
    }

    /// Forward-transform several polynomials (each already-transformed one
    /// is skipped).
    pub fn forward_polys(&mut self, polys: &mut [&mut RnsPoly]) {
        for poly in polys {
            self.to_evaluation(poly);
        }
    }

    /// Inverse counterpart of [`Evaluator::forward_polys`].
    pub fn inverse_polys(&mut self, polys: &mut [&mut RnsPoly]) {
        for poly in polys {
            self.to_coefficient(poly);
        }
    }

    /// Forward-NTT a raw buffer-of-digits batch: `rows × N` residues, row
    /// `r` mod prime `r % level` — all `level × digits` key-switch digit
    /// NTTs in **one** backend call.
    pub fn forward_flat(&mut self, level: usize, data: &mut [u64]) {
        let n = self.plan.degree();
        self.backend
            .forward_batch(&self.plan, LimbBatch::new(data, n, level));
    }

    /// Inverse counterpart of [`Evaluator::forward_flat`]: inverse-NTT a
    /// raw `rows × N` batch (row `r` mod prime `r % level`) in **one**
    /// backend call — the dispatch shape request batchers use to pack
    /// many small ciphertext ops into a single kernel schedule.
    pub fn inverse_flat(&mut self, level: usize, data: &mut [u64]) {
        let n = self.plan.degree();
        self.backend
            .inverse_batch(&self.plan, LimbBatch::new(data, n, level));
    }

    /// Element-wise product over packed rows, `acc[r] *= rhs[r]` with row
    /// `r` reduced mod prime `r % level` — the flat companion of
    /// [`Evaluator::mul_pointwise`]. One backend call covers every packed
    /// polynomial, whatever the row count.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` does not match `acc`'s shape.
    pub fn pointwise_flat(&mut self, level: usize, acc: &mut [u64], rhs: &[u64]) {
        assert_eq!(acc.len(), rhs.len(), "operand shape mismatch");
        let n = self.plan.degree();
        self.backend
            .pointwise_batch(&self.plan, LimbBatch::new(acc, n, level), rhs);
    }

    // ---- Fallible surface -------------------------------------------------
    //
    // Recoverable counterparts of the hot entry points, for callers that
    // retry, re-fork, or degrade on a classified [`BackendError`] (the
    // serving stack). On `Err` the polynomial / buffer is unchanged —
    // representation flags are only flipped after the backend call
    // succeeds — so an identical retry is always safe.

    /// Fallible [`Evaluator::make_resident`].
    pub fn try_make_resident(&mut self, poly: &mut RnsPoly) -> Result<(), BackendError> {
        self.backend.bind_stream();
        let mem = self.backend.memory();
        poly.try_make_resident_in(&mem)
    }

    /// Fallible [`Evaluator::to_evaluation`]. On `Err` the polynomial
    /// keeps its representation and data.
    pub fn try_to_evaluation(&mut self, poly: &mut RnsPoly) -> Result<(), BackendError> {
        if poly.repr() == Representation::Evaluation {
            return Ok(());
        }
        if let Some(buf) = self.device_target(poly) {
            self.backend
                .try_dev_forward(&self.plan, buf, poly.level())?;
            poly.mark_device_dirty();
        } else {
            poly.try_sync()?;
            self.backend
                .try_forward_batch(&self.plan, LimbBatch::from_poly(poly))?;
        }
        poly.set_repr(Representation::Evaluation);
        Ok(())
    }

    /// Fallible [`Evaluator::to_coefficient`]. On `Err` the polynomial
    /// keeps its representation and data.
    pub fn try_to_coefficient(&mut self, poly: &mut RnsPoly) -> Result<(), BackendError> {
        if poly.repr() == Representation::Coefficient {
            return Ok(());
        }
        if let Some(buf) = self.device_target(poly) {
            self.backend
                .try_dev_inverse(&self.plan, buf, poly.level())?;
            poly.mark_device_dirty();
        } else {
            poly.try_sync()?;
            self.backend
                .try_inverse_batch(&self.plan, LimbBatch::from_poly(poly))?;
        }
        poly.set_repr(Representation::Coefficient);
        Ok(())
    }

    /// Fallible [`Evaluator::forward_flat`].
    pub fn try_forward_flat(&mut self, level: usize, data: &mut [u64]) -> Result<(), BackendError> {
        let n = self.plan.degree();
        self.backend
            .try_forward_batch(&self.plan, LimbBatch::new(data, n, level))
    }

    /// Fallible [`Evaluator::inverse_flat`].
    pub fn try_inverse_flat(&mut self, level: usize, data: &mut [u64]) -> Result<(), BackendError> {
        let n = self.plan.degree();
        self.backend
            .try_inverse_batch(&self.plan, LimbBatch::new(data, n, level))
    }

    /// Fallible [`Evaluator::pointwise_flat`].
    ///
    /// # Panics
    ///
    /// Panics if `rhs` does not match `acc`'s shape (a caller bug, not a
    /// device condition).
    pub fn try_pointwise_flat(
        &mut self,
        level: usize,
        acc: &mut [u64],
        rhs: &[u64],
    ) -> Result<(), BackendError> {
        assert_eq!(acc.len(), rhs.len(), "operand shape mismatch");
        let n = self.plan.degree();
        self.backend
            .try_pointwise_batch(&self.plan, LimbBatch::new(acc, n, level), rhs)
    }

    /// Dispatch guard for binary ops: device path iff `rhs` is
    /// device-fresh in this backend's memory (then `acc` is pulled to the
    /// device too). Returns the pair of device views, or `None` for the
    /// host path (where `acc` is lazily synced).
    fn device_pair(&mut self, acc: &mut RnsPoly, rhs: &RnsPoly) -> Option<(DeviceBuf, DeviceBuf)> {
        let rbuf = self.dev_buf(rhs)?;
        let mem = self.backend.memory();
        acc.make_resident_in(&mem);
        let abuf = acc.device_buf_in(&mem).expect("just uploaded");
        Some((abuf, rbuf))
    }

    /// Pointwise product `acc *= rhs` (both in evaluation form). Runs on
    /// the device when `rhs` is device-resident.
    ///
    /// # Panics
    ///
    /// Panics on level mismatch or if either operand is in coefficient
    /// form.
    pub fn mul_pointwise(&mut self, acc: &mut RnsPoly, rhs: &RnsPoly) {
        assert_eq!(acc.level(), rhs.level(), "level mismatch");
        assert_eq!(
            acc.repr(),
            Representation::Evaluation,
            "lhs not in NTT form"
        );
        assert_eq!(
            rhs.repr(),
            Representation::Evaluation,
            "rhs not in NTT form"
        );
        if let Some((abuf, rbuf)) = self.device_pair(acc, rhs) {
            self.backend
                .dev_pointwise(&self.plan, abuf, rbuf, acc.level());
            acc.mark_device_dirty();
        } else {
            acc.sync();
            self.backend
                .pointwise_batch(&self.plan, LimbBatch::from_poly(acc), rhs.flat());
        }
    }

    /// Row-wise sum `acc += rhs` (representations must match; valid in
    /// either domain).
    ///
    /// # Panics
    ///
    /// Panics on level or representation mismatch.
    pub fn add_assign(&mut self, acc: &mut RnsPoly, rhs: &RnsPoly) {
        self.addsub_assign(acc, rhs, false);
    }

    /// Row-wise difference `acc -= rhs`.
    ///
    /// # Panics
    ///
    /// Panics on level or representation mismatch.
    pub fn sub_assign(&mut self, acc: &mut RnsPoly, rhs: &RnsPoly) {
        self.addsub_assign(acc, rhs, true);
    }

    fn addsub_assign(&mut self, acc: &mut RnsPoly, rhs: &RnsPoly, subtract: bool) {
        assert_eq!(acc.level(), rhs.level(), "level mismatch");
        assert_eq!(acc.repr(), rhs.repr(), "representation mismatch");
        if let Some((abuf, rbuf)) = self.device_pair(acc, rhs) {
            self.backend
                .dev_addsub(&self.plan, abuf, rbuf, acc.level(), subtract);
            acc.mark_device_dirty();
        } else if subtract {
            acc.sub_assign(rhs, self.plan.ring());
        } else {
            acc.add_assign(rhs, self.plan.ring());
        }
    }

    /// Negate `poly` in place (device-side when resident).
    pub fn negate(&mut self, poly: &mut RnsPoly) {
        if let Some(buf) = self.device_target(poly) {
            self.backend.dev_negate(&self.plan, buf, poly.level());
            poly.mark_device_dirty();
        } else {
            poly.negate(self.plan.ring());
        }
    }

    /// CKKS-style exact rescale: divide by the last active prime and drop
    /// a level (coefficient form required). Device-resident polynomials
    /// rescale on the device — no transfer.
    ///
    /// # Panics
    ///
    /// Panics if in evaluation form or only one level remains.
    pub fn rescale(&mut self, poly: &mut RnsPoly) {
        assert_eq!(
            poly.repr(),
            Representation::Coefficient,
            "rescale requires coefficient form"
        );
        assert!(poly.level() > 1, "cannot rescale past the last prime");
        if let Some(buf) = self.device_target(poly) {
            self.backend.dev_rescale(&self.plan, buf, poly.level());
            poly.device_truncate_level();
        } else {
            poly.rescale(self.plan.ring());
        }
    }

    /// Galois automorphism `X → X^g` in place (coefficient form; `g` odd).
    /// Device-resident polynomials permute on the device through the
    /// evaluator's scratch buffer — no host transfer; the write-back is a
    /// device-to-device copy.
    ///
    /// # Panics
    ///
    /// Panics if `poly` is in evaluation form or `g` is even.
    pub fn automorphism(&mut self, poly: &mut RnsPoly, g: u64) {
        assert_eq!(
            poly.repr(),
            Representation::Coefficient,
            "automorphism requires coefficient form"
        );
        if let Some(src) = self.device_target(poly) {
            let tmp = self.ensure_dev_scratch(src.len());
            self.backend
                .dev_automorphism(&self.plan, src, tmp, poly.level(), g);
            lock_memory(&self.backend.memory()).copy(tmp, src);
            poly.mark_device_dirty();
        } else {
            poly.sync();
            let mut out = vec![0u64; poly.flat().len()];
            host_automorphism_rows(&self.plan, poly.level(), g, poly.flat(), &mut out);
            poly.flat_mut().copy_from_slice(&out);
        }
    }

    /// Fallible [`Evaluator::automorphism`]. On `Err` the polynomial is
    /// unchanged (the scratch write-back only runs after the kernel
    /// succeeds).
    pub fn try_automorphism(&mut self, poly: &mut RnsPoly, g: u64) -> Result<(), BackendError> {
        assert_eq!(
            poly.repr(),
            Representation::Coefficient,
            "automorphism requires coefficient form"
        );
        if let Some(src) = self.device_target(poly) {
            let tmp = self.ensure_dev_scratch(src.len());
            self.backend
                .try_dev_automorphism(&self.plan, src, tmp, poly.level(), g)?;
            lock_memory(&self.backend.memory()).copy(tmp, src);
            poly.mark_device_dirty();
        } else {
            poly.try_sync()?;
            let mut out = vec![0u64; poly.flat().len()];
            host_automorphism_rows(&self.plan, poly.level(), g, poly.flat(), &mut out);
            poly.flat_mut().copy_from_slice(&out);
        }
        Ok(())
    }

    /// Mod-raise: re-embed a last-level (single-prime) coefficient
    /// polynomial into the first `to_level` primes of the RNS basis by a
    /// centered lift mod `p₀` — the bootstrapping entry point. The source
    /// is unchanged; device-resident sources produce a device-resident
    /// result with no host transfer.
    ///
    /// # Panics
    ///
    /// Panics unless `poly` is at level 1 and in coefficient form.
    pub fn mod_raise(&mut self, poly: &mut RnsPoly, to_level: usize) -> RnsPoly {
        assert_eq!(poly.level(), 1, "mod_raise input must be at level 1");
        assert_eq!(
            poly.repr(),
            Representation::Coefficient,
            "mod_raise requires coefficient form"
        );
        if let Some(src) = self.device_target(poly) {
            let mut out = self.zero_resident(to_level, Representation::Coefficient);
            let dst = self.dev_buf(&out).expect("zero_resident is mirrored");
            self.backend.dev_modraise(&self.plan, src, dst, to_level);
            out.mark_device_dirty();
            out
        } else {
            poly.sync();
            let mut out =
                RnsPoly::zero_with_repr(self.plan.ring(), to_level, Representation::Coefficient);
            host_modraise_rows(&self.plan, to_level, poly.flat(), out.flat_mut());
            out
        }
    }

    /// Drop RNS moduli down to `target` level with no scale change — exact
    /// basis truncation (the dropped rows are simply discarded). Used to
    /// align ciphertext levels before an add/multiply. Device-resident
    /// polynomials shrink their logical view in place; nothing crosses the
    /// bus.
    ///
    /// # Panics
    ///
    /// Panics if `target` is 0 or above the current level.
    pub fn drop_level(&mut self, poly: &mut RnsPoly, target: usize) {
        assert!(
            target >= 1 && target <= poly.level(),
            "invalid drop_level target"
        );
        if poly.level() == target {
            return;
        }
        if self.device_target(poly).is_some() {
            while poly.level() > target {
                poly.device_truncate_level();
            }
        } else {
            poly.sync();
            *poly = poly.truncated(target);
        }
    }

    /// Key-switch accumulate `acc += x · y` where `x` is a raw device view
    /// (e.g. one digit polynomial of a decomposed buffer) and `y` is a
    /// device-resident polynomial (e.g. a relinearization key half). All
    /// three operands must live in this backend's memory; this is a
    /// device-only fast path — host chains use
    /// [`Evaluator::mul_pointwise`] + [`Evaluator::add_assign`].
    ///
    /// # Panics
    ///
    /// Panics if `acc` or `y` is not device-fresh in this backend's
    /// memory, or on shape mismatch.
    pub fn fma_resident(&mut self, acc: &mut RnsPoly, x: DeviceBuf, y: &RnsPoly) {
        assert_eq!(acc.level(), y.level(), "level mismatch");
        let ybuf = self.dev_buf(y).expect("fma rhs must be device-resident");
        let abuf = self
            .device_target(acc)
            .expect("fma accumulator must be device-resident");
        assert_eq!(x.len(), abuf.len(), "digit view shape mismatch");
        self.backend.dev_fma(&self.plan, abuf, x, ybuf, acc.level());
        acc.mark_device_dirty();
    }

    /// Gadget-decompose a device-resident coefficient polynomial into the
    /// evaluator's device scratch and forward-NTT every digit row in one
    /// batched call. Returns the `level·digits`-polynomial buffer-of-
    /// digits view (sub-view `k·level·N .. (k+1)·level·N` is digit
    /// `k = j·digits + d`, already in evaluation form). `None` when `e2c`
    /// is not device-resident here — the caller falls back to the packed
    /// host path.
    ///
    /// Unlike the host path, **all** `level × digits` digits are
    /// processed (zero digits transform to zero and accumulate nothing),
    /// so results stay bit-identical while the data never leaves the
    /// device.
    pub fn decompose_resident(
        &mut self,
        e2c: &RnsPoly,
        digits: usize,
        gadget_bits: u32,
    ) -> Option<DeviceBuf> {
        assert_eq!(
            e2c.repr(),
            Representation::Coefficient,
            "decomposition requires coefficient form"
        );
        let src = self.dev_buf(e2c)?;
        let level = e2c.level();
        let words = level * digits * level * self.plan.degree();
        let scratch = self.ensure_dev_scratch(words);
        self.backend
            .dev_decompose(&self.plan, src, scratch, level, digits, gadget_bits);
        self.backend.dev_forward(&self.plan, scratch, level);
        Some(scratch)
    }

    /// Grow-only device scratch view of exactly `words` words.
    fn ensure_dev_scratch(&mut self, words: usize) -> DeviceBuf {
        let mem = self.backend.memory();
        match self.dev_scratch {
            Some(buf) if buf.len() >= words => buf.sub(0, words),
            old => {
                if let Some(buf) = old {
                    lock_memory(&mem).free(buf);
                }
                let buf = lock_memory(&mem).alloc(words);
                self.dev_scratch = Some(buf);
                buf.sub(0, words)
            }
        }
    }

    /// Fused negacyclic product of two coefficient-form polynomials. When
    /// either operand is device-resident the product is computed and left
    /// on the device (a host-side co-operand is staged through a
    /// temporary device buffer — one counted upload, the honest cost of a
    /// mixed-residency multiply).
    ///
    /// # Panics
    ///
    /// Panics on level mismatch or non-coefficient operands.
    pub fn multiply(&mut self, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        let (da, db) = (self.dev_buf(a), self.dev_buf(b));
        if da.is_some() || db.is_some() {
            assert_eq!(a.level(), b.level(), "level mismatch");
            assert_eq!(
                a.repr(),
                Representation::Coefficient,
                "lhs must be coefficients"
            );
            assert_eq!(
                b.repr(),
                Representation::Coefficient,
                "rhs must be coefficients"
            );
            self.backend.bind_stream();
            let mem = self.backend.memory();
            // Host co-operands are prefetched through the backend's
            // staging hook: on stream-modeling backends the upload rides
            // a copy stream fenced by an event, so compute already queued
            // on this executor's stream overlaps the transfer instead of
            // waiting behind it (ROADMAP item p).
            let (abuf, atmp) = match da {
                Some(buf) => (buf, None),
                None => {
                    let t = self.backend.stage_upload(a.flat());
                    (t, Some(t))
                }
            };
            let (bbuf, btmp) = match db {
                Some(buf) => (buf, None),
                None => {
                    let t = self.backend.stage_upload(b.flat());
                    (t, Some(t))
                }
            };
            let mut out = self.zero_resident(a.level(), Representation::Coefficient);
            let obuf = self.dev_buf(&out).expect("freshly resident");
            self.backend
                .dev_multiply(&self.plan, abuf, bbuf, obuf, a.level());
            for tmp in [atmp, btmp].into_iter().flatten() {
                lock_memory(&mem).free(tmp);
            }
            out.mark_device_dirty();
            return out;
        }
        multiply_with(&mut *self.backend, &self.plan, a, b)
    }
}

/// The one fused-multiply entry: precondition checks plus the batched
/// backend call. Shared by [`Evaluator::multiply`] and the ring-level
/// convenience API ([`RnsRing::multiply`]) so the operand contract lives
/// in exactly one place.
///
/// # Panics
///
/// Panics on level mismatch or non-coefficient operands.
pub(crate) fn multiply_with(
    backend: &mut dyn NttBackend,
    plan: &RingPlan,
    a: &RnsPoly,
    b: &RnsPoly,
) -> RnsPoly {
    assert_eq!(a.level(), b.level(), "level mismatch");
    assert_eq!(
        a.repr(),
        Representation::Coefficient,
        "lhs must be coefficients"
    );
    assert_eq!(
        b.repr(),
        Representation::Coefficient,
        "rhs must be coefficients"
    );
    let mut out = RnsPoly::zero_at_level(plan.ring(), a.level());
    backend.multiply_batch(plan, a.flat(), b.flat(), LimbBatch::from_poly(&mut out));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::negacyclic_convolution;

    fn ring(n: usize, np: usize) -> RnsRing {
        RnsRing::new(n, ntt_math::ntt_primes(59, 2 * n as u64, np)).unwrap()
    }

    #[test]
    fn strategies_agree_on_canonical_products() {
        for p in [
            ntt_math::ntt_prime(31, 64).unwrap(),
            ntt_math::ntt_prime(59, 64).unwrap(),
            ntt_math::ntt_prime(61, 64).unwrap(),
        ] {
            let br = PointwiseStrategy::choose_with(StrategyMode::Barrett, p);
            let mo = PointwiseStrategy::choose_with(StrategyMode::Montgomery, p);
            assert!(matches!(br, PointwiseStrategy::Barrett(_)));
            assert!(matches!(mo, PointwiseStrategy::Montgomery(_)));
            for (a, b) in [(0, 1), (p - 1, p - 1), (p / 2, p / 3), (12345, p - 7)] {
                assert_eq!(br.mul(a, b), mo.mul(a, b), "a={a} b={b} p={p}");
                assert_eq!(br.mul(a, b), ntt_math::mul_mod(a, b, p));
            }
        }
    }

    #[test]
    fn oversized_modulus_falls_back_to_barrett() {
        // A 63-bit prime is above the 2^62 lazy bound: Montgomery must not
        // be selected even when forced.
        let p = 0x7FFF_FFFF_FFFF_FD21u64;
        assert!(ntt_math::is_prime(p));
        let s = PointwiseStrategy::choose_with(StrategyMode::Montgomery, p);
        assert!(matches!(s, PointwiseStrategy::Barrett(_)));
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(StrategyMode::parse("barrett"), StrategyMode::Barrett);
        assert_eq!(StrategyMode::parse(" MONT "), StrategyMode::Montgomery);
        assert_eq!(StrategyMode::parse("montgomery"), StrategyMode::Montgomery);
        assert_eq!(StrategyMode::parse(""), StrategyMode::Auto);
        assert_eq!(StrategyMode::parse("bogus"), StrategyMode::Auto);
    }

    #[test]
    fn calibration_returns_finite_timings() {
        let p = ntt_math::ntt_prime(59, 1 << 12).unwrap();
        let (b, m) = calibrate_pointwise(p);
        assert!(b.is_finite() && b > 0.0);
        assert!(m.is_finite() && m > 0.0);
    }

    #[test]
    fn limb_batch_shape_checks() {
        let mut data = vec![0u64; 6 * 8];
        let batch = LimbBatch::new(&mut data, 8, 3); // 2 stacked polys of 3 limbs
        assert_eq!(batch.rows(), 6);
        assert_eq!(batch.prime_of(4), 1);
    }

    #[test]
    #[should_panic(expected = "whole polynomials")]
    fn limb_batch_rejects_ragged_stack() {
        let mut data = vec![0u64; 5 * 8];
        let _ = LimbBatch::new(&mut data, 8, 3);
    }

    #[test]
    fn cpu_backend_multiply_matches_naive() {
        let ring = ring(16, 3);
        let plan = RingPlan::new(&ring);
        let a = RnsPoly::from_i64_coeffs(&ring, &[3, -1, 4]);
        let b = RnsPoly::from_i64_coeffs(&ring, &[-2, 7]);
        let mut out = RnsPoly::zero(&ring);
        let mut be = CpuBackend::default();
        be.multiply_batch(&plan, a.flat(), b.flat(), LimbBatch::from_poly(&mut out));
        for i in 0..3 {
            let p = ring.basis().primes()[i];
            let want = negacyclic_convolution(a.row(i), b.row(i), p);
            assert_eq!(out.row(i), &want[..], "limb {i}");
        }
    }

    #[test]
    fn stacked_batch_transforms_each_poly_independently() {
        // Two polynomials stacked in one buffer-of-digits batch must give
        // the same rows as two separate per-poly transforms.
        let ring = ring(16, 2);
        let plan = RingPlan::new(&ring);
        let x = RnsPoly::from_i64_coeffs(&ring, &[1, -2, 3]);
        let y = RnsPoly::from_i64_coeffs(&ring, &[7, 0, -5, 2]);
        let mut stacked: Vec<u64> = [x.flat(), y.flat()].concat();
        let mut be = CpuBackend::default();
        be.forward_batch(&plan, LimbBatch::new(&mut stacked, 16, 2));
        let (mut ex, mut ey) = (x.clone(), y.clone());
        ex.to_evaluation(&ring);
        ey.to_evaluation(&ring);
        assert_eq!(&stacked[..2 * 16], ex.flat());
        assert_eq!(&stacked[2 * 16..], ey.flat());
    }

    #[test]
    fn host_arena_counts_transfers_and_frees() {
        let mut arena = HostArena::default();
        let buf = arena.alloc(8);
        arena.upload(buf, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let dst = arena.alloc(8);
        arena.copy(buf, dst);
        let mut out = [0u64; 4];
        arena.download(dst.sub(2, 4), &mut out);
        assert_eq!(out, [3, 4, 5, 6]);
        let s = arena.stats();
        assert_eq!((s.uploads, s.upload_words), (1, 8));
        assert_eq!((s.downloads, s.download_words), (1, 4));
        assert_eq!((s.d2d_copies, s.allocs), (1, 2));
        assert_eq!(arena.live_buffers(), 2);
        arena.free(buf);
        arena.free(dst.sub(0, 2)); // sub-view shares the parent's id
        assert_eq!(arena.live_buffers(), 0);
        assert_eq!(arena.stats().frees, 2);
        arena.reset_stats();
        assert_eq!(arena.stats(), TransferStats::default());
    }

    #[test]
    fn resident_chain_matches_host_chain_with_zero_steady_transfers() {
        // forward -> pointwise -> add -> inverse -> negate, device-resident
        // on the identity backend, must equal the host-only run bit for
        // bit, with no transfers after the initial uploads.
        let ring = ring(32, 3);
        let a = RnsPoly::from_i64_coeffs(&ring, &[5, -3, 2, 9]);
        let b = RnsPoly::from_i64_coeffs(&ring, &[-1, 4, 7]);

        // Host-only reference.
        let mut ev_h = Evaluator::cpu(&ring);
        let (mut ha, mut hb) = (a.clone(), b.clone());
        ev_h.to_evaluation(&mut ha);
        ev_h.to_evaluation(&mut hb);
        ev_h.mul_pointwise(&mut ha, &hb);
        ev_h.add_assign(&mut ha, &hb);
        ev_h.to_coefficient(&mut ha);
        ev_h.negate(&mut ha);

        // Device-resident run.
        let mut ev = Evaluator::cpu(&ring);
        let (mut da, mut db) = (a.clone(), b.clone());
        ev.make_resident(&mut da);
        ev.make_resident(&mut db);
        let before = ev.transfer_stats();
        ev.to_evaluation(&mut da);
        ev.to_evaluation(&mut db);
        ev.mul_pointwise(&mut da, &db);
        ev.add_assign(&mut da, &db);
        ev.to_coefficient(&mut da);
        ev.negate(&mut da);
        let steady = ev.transfer_stats().since(&before);
        assert_eq!(steady.host_transfers(), 0, "chain must stay resident");

        assert_eq!(da.residency(), crate::poly::Residency::DeviceOnly);
        da.sync(); // exactly one lazy download, here
        assert_eq!(ev.transfer_stats().since(&before).downloads, 1);
        assert_eq!(da, ha);
    }

    #[test]
    fn resident_multiply_and_rescale_match_host() {
        let ring = ring(16, 3);
        let a = RnsPoly::from_i64_coeffs(&ring, &[2, 0, -1, 3]);
        let b = RnsPoly::from_i64_coeffs(&ring, &[1, 5]);

        let mut ev = Evaluator::cpu(&ring);
        let host_prod = ev.multiply(&a, &b);
        let mut host_rescaled = host_prod.clone();
        host_rescaled.rescale(&ring);

        let (mut da, mut db) = (a.clone(), b.clone());
        ev.make_resident(&mut da);
        ev.make_resident(&mut db);
        let mut dev_prod = ev.multiply(&da, &db);
        assert_eq!(
            dev_prod.residency(),
            crate::poly::Residency::DeviceOnly,
            "resident inputs produce a resident product"
        );
        let mut dev_rescaled = dev_prod.clone();
        ev.rescale(&mut dev_rescaled);
        assert_eq!(dev_rescaled.level(), a.level() - 1);
        dev_prod.sync();
        dev_rescaled.sync();
        assert_eq!(dev_prod, host_prod);
        assert_eq!(dev_rescaled, host_rescaled);
    }

    #[test]
    fn mixed_residency_multiply_stages_the_host_operand() {
        // One resident operand, one host-only: the product must still be
        // computed (device-side) and match the host-only result — the
        // chained case `multiply(resident_product, host_poly)`.
        let ring = ring(16, 2);
        let a = RnsPoly::from_i64_coeffs(&ring, &[1, 4, -2]);
        let b = RnsPoly::from_i64_coeffs(&ring, &[3, -1]);
        let mut ev = Evaluator::cpu(&ring);
        let host = ev.multiply(&a, &b);
        let mut da = a.clone();
        ev.make_resident(&mut da);
        let prod = ev.multiply(&da, &a); // both resident-path product
        let mut chained = ev.multiply(&prod, &b); // prod DeviceOnly, b host
        let mut expect = ev.multiply(&a, &a);
        expect = ev.multiply(&expect, &b);
        chained.sync();
        assert_eq!(chained, expect);
        let mut mixed = ev.multiply(&da, &b); // Mirrored x HostOnly
        mixed.sync();
        assert_eq!(mixed, host);
    }

    #[test]
    fn host_writes_on_mirrored_polys_are_flushed_before_device_ops() {
        let ring = ring(16, 2);
        let mut ev = Evaluator::cpu(&ring);
        let mut x = RnsPoly::from_i64_coeffs(&ring, &[1, 2]);
        ev.make_resident(&mut x);
        // Host edit: marks the device copy stale.
        x.row_mut(0)[0] = 7;
        assert_eq!(
            x.residency(),
            crate::poly::Residency::Mirrored { host_dirty: true }
        );
        // Device op must flush the edit first (one upload), then run.
        let y = x.clone();
        ev.to_evaluation(&mut x);
        ev.to_coefficient(&mut x);
        x.sync();
        let mut y_host = y.clone();
        y_host.evict_device();
        assert_eq!(x.flat(), y_host.flat(), "flushed edit survives round trip");
    }

    #[test]
    fn decompose_resident_matches_host_reference() {
        let ring = ring(8, 2);
        let mut ev = Evaluator::cpu(&ring);
        let (digits, w) = (3usize, 5u32);
        let mut e2c = RnsPoly::from_i64_coeffs(&ring, &[100, 37, 2, 1 << 10]);
        let host_src = e2c.flat().to_vec();
        ev.make_resident(&mut e2c);
        let buf = ev
            .decompose_resident(&e2c, digits, w)
            .expect("resident source decomposes on device");
        // Reference: decompose then forward the whole digit buffer.
        let (n, level) = (8, 2);
        let mut expect = vec![0u64; level * digits * level * n];
        host_decompose_rows(n, level, digits, w, &host_src, &mut expect);
        let plan = RingPlan::new(&ring);
        let mut cpu = CpuBackend::default();
        cpu.forward_batch(&plan, LimbBatch::new(&mut expect, n, level));
        let mut got = vec![0u64; buf.len()];
        lock_memory(&ev.memory()).download(buf, &mut got);
        assert_eq!(got, expect);
    }

    #[test]
    #[should_panic(expected = "device-dirty")]
    fn stale_host_read_panics() {
        let ring = ring(16, 2);
        let mut ev = Evaluator::cpu(&ring);
        let mut x = RnsPoly::from_i64_coeffs(&ring, &[1]);
        ev.make_resident(&mut x);
        ev.to_evaluation(&mut x);
        let _ = x.flat(); // host read while the fresh copy is on the device
    }

    #[test]
    fn dropping_resident_polys_frees_their_buffers() {
        let ring = ring(16, 2);
        let mut ev = Evaluator::cpu(&ring);
        let mem = ev.memory();
        let mut x = RnsPoly::from_i64_coeffs(&ring, &[1, 2, 3]);
        ev.make_resident(&mut x);
        let y = x.clone();
        let allocs = lock_memory(&mem).stats().allocs;
        drop(x);
        drop(y);
        assert_eq!(lock_memory(&mem).stats().frees, allocs);
    }

    #[test]
    fn fork_shares_device_memory() {
        let be = CpuBackend::default();
        let forked = be.fork();
        assert!(same_memory(&be.memory(), &forked.memory()));
        assert!(!same_memory(&be.memory(), &CpuBackend::default().memory()));
    }

    #[test]
    fn evaluator_roundtrip_and_pointwise() {
        let ring = ring(16, 3);
        let mut ev = Evaluator::cpu(&ring);
        assert_eq!(ev.backend_name(), "cpu");
        let a = RnsPoly::from_i64_coeffs(&ring, &[1, 2]);
        let b = RnsPoly::from_i64_coeffs(&ring, &[3, -1]);
        // multiply via fused batch == transform + pointwise + inverse.
        let fused = ev.multiply(&a, &b);
        let (mut ea, mut eb) = (a.clone(), b.clone());
        ev.forward_polys(&mut [&mut ea, &mut eb]);
        ev.mul_pointwise(&mut ea, &eb);
        ev.to_coefficient(&mut ea);
        assert_eq!(fused, ea);
    }
}
