//! Polynomial rings `Z_p[X]/(X^N + 1)` and their RNS product rings.
//!
//! This is the ciphertext substrate of §III-B: an element of
//! `Z_Q[X]/(X^N+1)` is held as `np` rows of word-sized residues, one per
//! RNS prime, and multiplied via `np` independent N-point negacyclic NTTs
//! — exactly the batched workload the paper accelerates.

use crate::backend::{lock_memory, same_memory, BackendError, DeviceBuf, SharedDeviceMemory};
use crate::ct;
use crate::hier::HierPlan;
use crate::rns::{RnsBasis, RnsError};
use crate::table::NttTable;
use ntt_math::modops::{add_mod, neg_mod, sub_mod};
use ntt_math::root::RootError;
use std::sync::Arc;

/// Errors from ring construction and use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingError {
    /// No prime with the required `p ≡ 1 (mod 2N)` structure was found.
    NoSuitablePrime {
        /// Requested prime bit size.
        bits: u32,
        /// Ring degree.
        n: usize,
    },
    /// The modulus lacks a primitive 2N-th root of unity.
    Root(RootError),
    /// RNS basis construction failed.
    Rns(RnsError),
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::NoSuitablePrime { bits, n } => {
                write!(f, "no {bits}-bit prime ≡ 1 mod {} found", 2 * n)
            }
            RingError::Root(e) => write!(f, "root of unity: {e}"),
            RingError::Rns(e) => write!(f, "rns basis: {e}"),
        }
    }
}

impl std::error::Error for RingError {}

impl From<RootError> for RingError {
    fn from(e: RootError) -> Self {
        RingError::Root(e)
    }
}

impl From<RnsError> for RingError {
    fn from(e: RnsError) -> Self {
        RingError::Rns(e)
    }
}

/// A dense polynomial over one residue ring (coefficients `< p`, natural
/// order, length `N`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Polynomial {
    coeffs: Vec<u64>,
}

impl Polynomial {
    /// The zero polynomial of degree bound `n`.
    pub fn zero(n: usize) -> Self {
        Self { coeffs: vec![0; n] }
    }

    /// From explicit low-order coefficients, zero-padded to length `n`.
    ///
    /// # Panics
    ///
    /// Panics if more than `n` coefficients are given.
    pub fn from_coeffs(mut coeffs: Vec<u64>, n: usize) -> Self {
        assert!(coeffs.len() <= n, "too many coefficients for degree bound");
        coeffs.resize(n, 0);
        Self { coeffs }
    }

    /// The monomial `c·X^deg` in a ring of degree bound `n`.
    ///
    /// # Panics
    ///
    /// Panics if `deg >= n`.
    pub fn monomial(deg: usize, c: u64, n: usize) -> Self {
        assert!(deg < n, "monomial degree exceeds ring degree");
        let mut coeffs = vec![0; n];
        coeffs[deg] = c;
        Self { coeffs }
    }

    /// Coefficient slice (length `N`).
    #[inline]
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Mutable coefficient slice.
    #[inline]
    pub fn coeffs_mut(&mut self) -> &mut [u64] {
        &mut self.coeffs
    }

    /// Consume into the coefficient vector.
    pub fn into_coeffs(self) -> Vec<u64> {
        self.coeffs
    }
}

impl From<Polynomial> for Vec<u64> {
    fn from(p: Polynomial) -> Self {
        p.coeffs
    }
}

/// The ring `Z_p[X]/(X^N + 1)` with its NTT machinery.
///
/// Rings at or above [`crate::hier::HIER_MIN_N`] lazily build a
/// [`HierPlan`] (hierarchical 4-step NTT) and route every forward/inverse
/// transform through it; smaller rings keep the flat CT kernel. Both paths
/// are bit-identical.
#[derive(Debug, Clone)]
pub struct NegacyclicRing {
    table: NttTable,
    hier: std::sync::OnceLock<Option<HierPlan>>,
}

impl NegacyclicRing {
    /// Ring for an explicit NTT-friendly prime.
    ///
    /// # Errors
    ///
    /// Fails if `p` is not prime or `p ≢ 1 (mod 2N)`.
    pub fn new(n: usize, p: u64) -> Result<Self, RingError> {
        Ok(Self {
            table: NttTable::new(n, p)?,
            hier: std::sync::OnceLock::new(),
        })
    }

    /// Ring with the largest `bits`-bit NTT-friendly prime.
    ///
    /// # Errors
    ///
    /// [`RingError::NoSuitablePrime`] if no such prime exists.
    pub fn new_with_bits(n: usize, bits: u32) -> Result<Self, RingError> {
        let p = ntt_math::ntt_prime(bits, 2 * n as u64)
            .ok_or(RingError::NoSuitablePrime { bits, n })?;
        Self::new(n, p)
    }

    /// Ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.table.n()
    }

    /// The prime modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.table.modulus()
    }

    /// The underlying twiddle table (for kernels and size accounting).
    #[inline]
    pub fn table(&self) -> &NttTable {
        &self.table
    }

    /// The hierarchical 4-step plan, for rings at or above
    /// [`crate::hier::HIER_MIN_N`] (built lazily on first transform and
    /// shared across clones' threads thereafter).
    pub fn hier(&self) -> Option<&HierPlan> {
        self.hier
            .get_or_init(|| HierPlan::auto(&self.table))
            .as_ref()
    }

    /// Forward NTT in place (natural → bit-reversed evaluation order).
    /// Large rings dispatch through the hierarchical plan; the result is
    /// bit-identical either way.
    pub fn forward(&self, a: &mut [u64]) {
        match self.hier() {
            Some(h) => h.forward(a),
            None => ct::ntt(a, &self.table),
        }
    }

    /// Inverse NTT in place (bit-reversed evaluation → natural order).
    pub fn inverse(&self, a: &mut [u64]) {
        match self.hier() {
            Some(h) => h.inverse(a),
            None => ct::intt(a, &self.table),
        }
    }

    /// Negacyclic product `a · b mod (X^N + 1, p)` via the fused lazy NTT
    /// pipeline (one reduction at the very end, operands staged through the
    /// thread-local CPU backend's workspace — no per-call clones).
    ///
    /// # Panics
    ///
    /// Panics if either operand's length differs from `N`.
    pub fn multiply(&self, a: &Polynomial, b: &Polynomial) -> Polynomial {
        assert_eq!(a.coeffs.len(), self.degree(), "degree mismatch (lhs)");
        assert_eq!(b.coeffs.len(), self.degree(), "degree mismatch (rhs)");
        crate::backend::with_default_backend(|be| be.executor_mut().negacyclic_multiply(self, a, b))
    }

    /// Coefficient-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on degree mismatch.
    pub fn add(&self, a: &Polynomial, b: &Polynomial) -> Polynomial {
        assert_eq!(a.coeffs.len(), b.coeffs.len(), "degree mismatch");
        let p = self.modulus();
        Polynomial {
            coeffs: a
                .coeffs
                .iter()
                .zip(&b.coeffs)
                .map(|(&x, &y)| add_mod(x, y, p))
                .collect(),
        }
    }

    /// Coefficient-wise difference.
    ///
    /// # Panics
    ///
    /// Panics on degree mismatch.
    pub fn sub(&self, a: &Polynomial, b: &Polynomial) -> Polynomial {
        assert_eq!(a.coeffs.len(), b.coeffs.len(), "degree mismatch");
        let p = self.modulus();
        Polynomial {
            coeffs: a
                .coeffs
                .iter()
                .zip(&b.coeffs)
                .map(|(&x, &y)| sub_mod(x, y, p))
                .collect(),
        }
    }
}

/// Which domain an [`RnsPoly`]'s rows currently live in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Representation {
    /// Natural-order coefficients.
    Coefficient,
    /// Bit-reversed NTT evaluations (pointwise products are valid here).
    Evaluation,
}

/// The RNS product ring: one [`NegacyclicRing`] per prime plus the CRT
/// basis.
///
/// Internals (twiddle tables, basis, cached plan data) live behind an
/// [`std::sync::Arc`], so cloning a ring is a reference-count bump — this is
/// what lets a [`crate::backend::RingPlan`] hold a ring handle without
/// duplicating the tables.
#[derive(Debug, Clone)]
pub struct RnsRing {
    inner: std::sync::Arc<RnsRingInner>,
}

#[derive(Debug)]
struct RnsRingInner {
    rings: Vec<NegacyclicRing>,
    basis: RnsBasis,
    /// Plan-time pointwise strategy per prime, computed once on first
    /// [`RnsRing::plan`] call (see `crate::backend`).
    strategies: std::sync::OnceLock<std::sync::Arc<[crate::backend::PointwiseStrategy]>>,
}

impl RnsRing {
    /// Build from explicit primes (all must be NTT-friendly for degree `n`).
    ///
    /// # Errors
    ///
    /// Propagates prime/root failures from ring and basis construction.
    pub fn new(n: usize, primes: Vec<u64>) -> Result<Self, RingError> {
        let basis = RnsBasis::new(primes.clone())?;
        let rings = primes
            .into_iter()
            .map(|p| NegacyclicRing::new(n, p))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            inner: std::sync::Arc::new(RnsRingInner {
                rings,
                basis,
                strategies: std::sync::OnceLock::new(),
            }),
        })
    }

    /// Build from an [`crate::params::HeParams`] preset.
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    pub fn from_params(params: &crate::params::HeParams) -> Result<Self, RingError> {
        Self::new(
            params.n(),
            ntt_math::ntt_primes(params.prime_bits(), 2 * params.n() as u64, params.np()),
        )
    }

    /// Ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.inner.rings[0].degree()
    }

    /// Number of primes `np`.
    #[inline]
    pub fn np(&self) -> usize {
        self.inner.rings.len()
    }

    /// The per-prime ring at RNS index `i`.
    #[inline]
    pub fn ring(&self, i: usize) -> &NegacyclicRing {
        &self.inner.rings[i]
    }

    /// The CRT basis.
    #[inline]
    pub fn basis(&self) -> &RnsBasis {
        &self.inner.basis
    }

    /// The cached execution plan for this ring (see
    /// [`crate::backend::RingPlan`]): per-prime pointwise reduction
    /// strategies are chosen on the first call (benchmark-derived, with an
    /// `NTT_WARP_POINTWISE` override) and memoized in the ring, so repeated
    /// calls cost two reference-count bumps.
    pub fn plan(&self) -> crate::backend::RingPlan {
        let strategies = self
            .inner
            .strategies
            .get_or_init(|| crate::backend::PointwiseStrategy::choose_all(self.basis().primes()))
            .clone();
        crate::backend::RingPlan::from_parts(self.clone(), strategies)
    }

    /// Negacyclic product of full RNS polynomials (all active levels) via
    /// the fused lazy pipeline: every limb runs
    /// `ntt_lazy → lazy pointwise → intt_lazy` with a single final
    /// reduction, residue-parallel under the thread-local
    /// [`crate::backend::CpuBackend`]'s [`crate::engine::ThreadPolicy`].
    /// The operands are staged through the backend workspace — no clones,
    /// no per-call allocation beyond the result.
    ///
    /// Routed through the plan-based [`crate::backend::NttBackend`] API;
    /// callers that want a different execution substrate (or an explicit
    /// thread policy) should hold a [`crate::backend::Evaluator`].
    ///
    /// # Panics
    ///
    /// Panics if the operands disagree in level or are not in
    /// coefficient form.
    pub fn multiply(&self, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        let plan = self.plan();
        crate::backend::with_default_backend(|be| crate::backend::multiply_with(be, &plan, a, b))
    }
}

/// Where an [`RnsPoly`]'s fresh copy currently lives (see
/// [`RnsPoly::residency`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// No device mirror: host rows are the only copy.
    HostOnly,
    /// The device copy is the fresh one; host rows are stale until
    /// [`RnsPoly::sync`] downloads them.
    DeviceOnly,
    /// Both copies exist and the host rows are fresh. `host_dirty` marks a
    /// host-side edit not yet re-uploaded (the next device operation
    /// flushes it).
    Mirrored {
        /// Host rows were modified since the last upload.
        host_dirty: bool,
    },
}

/// The device half of a resident polynomial: a buffer in some backend's
/// [`crate::backend::DeviceMemory`] plus the two dirty bits of the
/// storage state machine. Holding the memory handle *inside* the poly is
/// what makes lazy downloads and drop-time frees possible without a
/// backend in scope.
struct DeviceMirror {
    mem: SharedDeviceMemory,
    /// Whole allocation; the active view is `buf.sub(0, level·n)`
    /// (rescaling shrinks the logical view, not the allocation).
    buf: DeviceBuf,
    /// Host rows modified since the last upload (device stale).
    host_dirty: bool,
    /// Device modified since the last download (host stale).
    dev_dirty: bool,
}

impl std::fmt::Debug for DeviceMirror {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceMirror")
            .field("buf", &self.buf)
            .field("host_dirty", &self.host_dirty)
            .field("dev_dirty", &self.dev_dirty)
            .finish_non_exhaustive()
    }
}

impl DeviceMirror {
    /// Device-side duplicate of the active view (used by `Clone`; the
    /// copy never crosses the bus).
    fn duplicate(&self, active_words: usize) -> DeviceMirror {
        let buf = {
            let mut mem = lock_memory(&self.mem);
            let dst = mem.alloc(active_words);
            mem.copy(self.buf.sub(0, active_words), dst);
            dst
        };
        DeviceMirror {
            mem: Arc::clone(&self.mem),
            buf,
            host_dirty: self.host_dirty,
            dev_dirty: self.dev_dirty,
        }
    }
}

impl Drop for DeviceMirror {
    fn drop(&mut self) {
        lock_memory(&self.mem).free(self.buf);
    }
}

/// An element of the RNS ring: `level` rows of `N` residues.
///
/// `level` tracks how many primes are still active (CKKS-style rescaling
/// drops the last one); rows `level..np` are absent.
///
/// # Storage state machine
///
/// A polynomial is born [`Residency::HostOnly`]. An evaluator can attach a
/// device mirror ([`crate::backend::Evaluator::make_resident`]), after
/// which device-side operations flip it to [`Residency::DeviceOnly`]
/// (host rows stale) and host-side writes flip it back through
/// [`Residency::Mirrored`] with `host_dirty` set. Downloads are **lazy**:
/// nothing crosses the bus until a host access needs the fresh rows —
/// mutable accessors ([`RnsPoly::flat_mut`], [`RnsPoly::row_mut`], the
/// in-place ring ops) sync implicitly, shared read accessors
/// ([`RnsPoly::flat`], [`RnsPoly::row`], …) require an explicit
/// [`RnsPoly::sync`] first and panic on stale reads (loud beats wrong).
///
/// ```
/// use ntt_core::backend::Evaluator;
/// use ntt_core::poly::Residency;
/// use ntt_core::{RnsPoly, RnsRing};
///
/// let ring = RnsRing::new(8, ntt_math::ntt_primes(59, 16, 2))?;
/// let mut ev = Evaluator::cpu(&ring);
/// let mut x = RnsPoly::from_i64_coeffs(&ring, &[1, 2, 3]);
/// assert_eq!(x.residency(), Residency::HostOnly);
///
/// ev.make_resident(&mut x); // one upload
/// ev.to_evaluation(&mut x); // runs on the device…
/// ev.to_coefficient(&mut x);
/// assert_eq!(x.residency(), Residency::DeviceOnly); // …host rows stale
///
/// x.sync(); // lazy download happens exactly here
/// assert_eq!(x.residency(), Residency::Mirrored { host_dirty: false });
/// assert_eq!(x.coefficient_centered(&ring, 1), Some(2));
/// # Ok::<(), ntt_core::RingError>(())
/// ```
#[derive(Debug)]
pub struct RnsPoly {
    n: usize,
    level: usize,
    repr: Representation,
    /// Row-major `level × n` residues; row `i` is mod `primes[i]`.
    data: Vec<u64>,
    /// Device mirror, when resident.
    mirror: Option<DeviceMirror>,
}

impl Clone for RnsPoly {
    /// Clones preserve residency: a device-resident polynomial is
    /// duplicated with a device-to-device copy (no bus transfer), stale
    /// host rows stay stale in the copy.
    fn clone(&self) -> Self {
        RnsPoly {
            n: self.n,
            level: self.level,
            repr: self.repr,
            data: self.data.clone(),
            mirror: self
                .mirror
                .as_ref()
                .map(|m| m.duplicate(self.level * self.n)),
        }
    }
}

impl PartialEq for RnsPoly {
    /// Value equality over the host rows. Both sides must be host-fresh
    /// (sync device-resident polynomials first).
    ///
    /// # Panics
    ///
    /// Panics if either side is [`Residency::DeviceOnly`].
    fn eq(&self, other: &Self) -> bool {
        assert!(
            !self.device_dirty() && !other.device_dirty(),
            "comparing device-dirty RnsPoly; call sync() first"
        );
        self.n == other.n
            && self.level == other.level
            && self.repr == other.repr
            && self.data == other.data
    }
}

impl Eq for RnsPoly {}

impl RnsPoly {
    /// The zero element at full level.
    pub fn zero(ring: &RnsRing) -> Self {
        Self::zero_at_level(ring, ring.np())
    }

    /// The zero element with `level` active primes.
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or exceeds `ring.np()`.
    pub fn zero_at_level(ring: &RnsRing, level: usize) -> Self {
        Self::zero_with_repr(ring, level, Representation::Coefficient)
    }

    /// The zero element with `level` active primes, tagged with an explicit
    /// representation (the zero polynomial is zero in either domain, so no
    /// transform is needed — accumulators in the NTT domain start here).
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or exceeds `ring.np()`.
    pub fn zero_with_repr(ring: &RnsRing, level: usize, repr: Representation) -> Self {
        assert!(level >= 1 && level <= ring.np(), "invalid level");
        Self {
            n: ring.degree(),
            level,
            repr,
            data: vec![0; level * ring.degree()],
            mirror: None,
        }
    }

    /// Encode signed coefficients (centered) into every active prime row.
    ///
    /// # Panics
    ///
    /// Panics if more than `N` coefficients are supplied.
    pub fn from_i64_coeffs(ring: &RnsRing, coeffs: &[i64]) -> Self {
        let n = ring.degree();
        assert!(coeffs.len() <= n, "too many coefficients");
        let mut out = Self::zero(ring);
        for (i, &c) in coeffs.iter().enumerate() {
            for (row, &p) in ring.basis().primes().iter().enumerate() {
                out.data[row * n + i] = if c >= 0 {
                    (c as u64) % p
                } else {
                    neg_mod(((-(c as i128)) as u64) % p, p)
                };
            }
        }
        out
    }

    /// Ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.n
    }

    /// Active prime count.
    #[inline]
    pub fn level(&self) -> usize {
        self.level
    }

    /// Current representation.
    #[inline]
    pub fn repr(&self) -> Representation {
        self.repr
    }

    // ---- Storage state machine -----------------------------------------

    /// Where the fresh copy of this polynomial currently lives.
    pub fn residency(&self) -> Residency {
        match &self.mirror {
            None => Residency::HostOnly,
            Some(m) if m.dev_dirty => Residency::DeviceOnly,
            Some(m) => Residency::Mirrored {
                host_dirty: m.host_dirty,
            },
        }
    }

    /// `true` when the device copy is newer than the host rows.
    #[inline]
    pub fn device_dirty(&self) -> bool {
        self.mirror.as_ref().is_some_and(|m| m.dev_dirty)
    }

    /// Explicit sync point: if the device copy is the fresh one, download
    /// it into the host rows (one counted transfer). No-op otherwise.
    /// This is the only place device→host data movement happens — reads
    /// are lazy, never eager.
    pub fn sync(&mut self) {
        let (n, level) = (self.n, self.level);
        if let Some(m) = &mut self.mirror {
            if m.dev_dirty {
                lock_memory(&m.mem).download(m.buf.sub(0, level * n), &mut self.data);
                m.dev_dirty = false;
            }
        }
    }

    /// Fallible [`RnsPoly::sync`]: the download can report a classified
    /// fault instead of panicking. On `Err` the host rows are unchanged
    /// and the device copy stays marked fresh, so the sync can be
    /// retried.
    pub fn try_sync(&mut self) -> Result<(), BackendError> {
        let (n, level) = (self.n, self.level);
        if let Some(m) = &mut self.mirror {
            if m.dev_dirty {
                lock_memory(&m.mem).try_download(m.buf.sub(0, level * n), &mut self.data)?;
                m.dev_dirty = false;
            }
        }
        Ok(())
    }

    /// Drop the device mirror (downloading first if it was fresh) and
    /// return to [`Residency::HostOnly`]. Frees the device buffer.
    pub fn evict_device(&mut self) {
        self.sync();
        self.mirror = None; // Drop frees the buffer
    }

    /// Internal alias: host mutators call this before touching `data`.
    fn ensure_host(&mut self) {
        self.sync();
    }

    /// Record a host-side modification (device copy now stale). Callers
    /// must [`RnsPoly::ensure_host`] first.
    fn mark_host_edit(&mut self) {
        if let Some(m) = &mut self.mirror {
            debug_assert!(!m.dev_dirty, "host edit while device copy was fresh");
            m.host_dirty = true;
        }
    }

    /// Record a device-side modification (host rows now stale; any pending
    /// host edit has been flushed by the caller).
    pub(crate) fn mark_device_dirty(&mut self) {
        let m = self.mirror.as_mut().expect("no device mirror");
        m.host_dirty = false;
        m.dev_dirty = true;
    }

    /// Whether this polynomial has a mirror in `mem`'s device memory.
    pub(crate) fn has_mirror_in(&self, mem: &SharedDeviceMemory) -> bool {
        self.mirror
            .as_ref()
            .is_some_and(|m| same_memory(&m.mem, mem))
    }

    /// The active device view (`level·n` words) if resident in `mem` with
    /// an up-to-date device copy.
    pub(crate) fn device_buf_in(&self, mem: &SharedDeviceMemory) -> Option<DeviceBuf> {
        let m = self.mirror.as_ref()?;
        (same_memory(&m.mem, mem) && !m.host_dirty).then(|| m.buf.sub(0, self.level * self.n))
    }

    /// Make this polynomial resident in `mem`: attach a mirror (first
    /// upload), flush host edits (re-upload), or no-op when already clean
    /// there. A mirror in a *different* memory is synced and dropped
    /// first.
    pub(crate) fn make_resident_in(&mut self, mem: &SharedDeviceMemory) {
        if self.mirror.is_some() && !self.has_mirror_in(mem) {
            self.evict_device();
        }
        let active = self.level * self.n;
        match &mut self.mirror {
            Some(m) => {
                if m.host_dirty {
                    lock_memory(&m.mem).upload(m.buf.sub(0, active), &self.data);
                    m.host_dirty = false;
                }
            }
            None => {
                let buf = {
                    let mut guard = lock_memory(mem);
                    let buf = guard.alloc(active);
                    guard.upload(buf, &self.data);
                    buf
                };
                self.mirror = Some(DeviceMirror {
                    mem: Arc::clone(mem),
                    buf,
                    host_dirty: false,
                    dev_dirty: false,
                });
            }
        }
    }

    /// Fallible [`RnsPoly::make_resident_in`]: allocation and upload
    /// faults come back as classified errors. On `Err` the polynomial's
    /// residency state is unchanged (a buffer allocated before a failed
    /// first upload is freed, not leaked) and the transition can be
    /// retried.
    pub(crate) fn try_make_resident_in(
        &mut self,
        mem: &SharedDeviceMemory,
    ) -> Result<(), BackendError> {
        if self.mirror.is_some() && !self.has_mirror_in(mem) {
            self.evict_device();
        }
        let active = self.level * self.n;
        match &mut self.mirror {
            Some(m) => {
                if m.host_dirty {
                    lock_memory(&m.mem).try_upload(m.buf.sub(0, active), &self.data)?;
                    m.host_dirty = false;
                }
            }
            None => {
                let buf = {
                    let mut guard = lock_memory(mem);
                    let buf = guard.try_alloc(active)?;
                    if let Err(e) = guard.try_upload(buf, &self.data) {
                        guard.free(buf);
                        return Err(e);
                    }
                    buf
                };
                self.mirror = Some(DeviceMirror {
                    mem: Arc::clone(mem),
                    buf,
                    host_dirty: false,
                    dev_dirty: false,
                });
            }
        }
        Ok(())
    }

    /// Attach a pre-allocated (zeroed) device buffer as an in-sync mirror
    /// of an all-zero polynomial — no transfer.
    ///
    /// # Panics
    ///
    /// Panics if a mirror already exists or the buffer is too small.
    pub(crate) fn adopt_mirror(&mut self, mem: &SharedDeviceMemory, buf: DeviceBuf) {
        assert!(self.mirror.is_none(), "mirror already attached");
        assert!(buf.len() >= self.level * self.n, "mirror buffer too small");
        debug_assert!(self.data.iter().all(|&v| v == 0), "adopt requires zeros");
        self.mirror = Some(DeviceMirror {
            mem: Arc::clone(mem),
            buf,
            host_dirty: false,
            dev_dirty: false,
        });
    }

    /// Drop the last level of a device-resident polynomial after a
    /// device-side rescale: shrinks the logical view (host rows and device
    /// view) without touching the allocation, and marks the device copy
    /// fresh.
    pub(crate) fn device_truncate_level(&mut self) {
        assert!(self.level > 1, "cannot drop the last remaining prime");
        self.level -= 1;
        self.data.truncate(self.level * self.n);
        self.mark_device_dirty();
    }

    /// Residue row for prime `i` (length `N`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= level`, or on a stale host read
    /// ([`Residency::DeviceOnly`] — call [`RnsPoly::sync`] first).
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        assert!(i < self.level, "row beyond active level");
        self.assert_host_fresh();
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Mutable residue row for prime `i`. Lazily downloads a fresh device
    /// copy first and marks the device copy stale.
    ///
    /// # Panics
    ///
    /// Panics if `i >= level`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [u64] {
        assert!(i < self.level, "row beyond active level");
        self.ensure_host();
        self.mark_host_edit();
        &mut self.data[i * self.n..(i + 1) * self.n]
    }

    /// The flat `level × N` contiguous residue buffer (row-major; row `i`
    /// is mod prime `i`). This is the batched-kernel view: one slice holds
    /// every limb, so a single call can transform them all.
    ///
    /// # Panics
    ///
    /// Panics on a stale host read ([`Residency::DeviceOnly`] — call
    /// [`RnsPoly::sync`] first).
    #[inline]
    pub fn flat(&self) -> &[u64] {
        self.assert_host_fresh();
        &self.data
    }

    /// Mutable flat `level × N` residue buffer. Lazily downloads a fresh
    /// device copy first and marks the device copy stale.
    ///
    /// Writing through this view can change which domain the values are
    /// in; callers that do so must retag with [`RnsPoly::set_repr`].
    #[inline]
    pub fn flat_mut(&mut self) -> &mut [u64] {
        self.ensure_host();
        self.mark_host_edit();
        &mut self.data
    }

    #[inline]
    fn assert_host_fresh(&self) {
        assert!(
            !self.device_dirty(),
            "host read of a device-dirty RnsPoly; call sync() first"
        );
    }

    /// Retag the representation **without transforming** — for expert
    /// callers that have just rewritten the raw buffer via
    /// [`RnsPoly::flat_mut`] (e.g. refilling a reused digit polynomial with
    /// coefficient data). Does not touch the residues.
    #[inline]
    pub fn set_repr(&mut self, repr: Representation) {
        self.repr = repr;
    }

    /// Overwrite `self` with `other`'s residues and representation,
    /// reusing the existing buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics on degree or level mismatch.
    pub fn copy_from(&mut self, other: &RnsPoly) {
        assert_eq!(self.n, other.n, "degree mismatch");
        assert_eq!(self.level, other.level, "level mismatch");
        other.assert_host_fresh();
        // Every host word is overwritten: no download needed, just mark
        // any device copy stale.
        if let Some(m) = &mut self.mirror {
            m.dev_dirty = false;
            m.host_dirty = true;
        }
        self.data.copy_from_slice(&other.data);
        self.repr = other.repr;
    }

    /// Forward-NTT every active row (no-op if already in evaluation form).
    ///
    /// All limbs are transformed in one batched, residue-parallel
    /// [`crate::backend::NttBackend::forward_batch`] call on the
    /// thread-local CPU backend (lazy kernels, canonical output).
    pub fn to_evaluation(&mut self, ring: &RnsRing) {
        use crate::backend::{LimbBatch, NttBackend};
        if self.repr == Representation::Evaluation {
            return;
        }
        self.ensure_host();
        self.mark_host_edit();
        let plan = ring.plan();
        crate::backend::with_default_backend(|be| {
            be.forward_batch(&plan, LimbBatch::new(&mut self.data, self.n, self.level));
        });
        self.repr = Representation::Evaluation;
    }

    /// Inverse-NTT every active row (no-op if already in coefficient form).
    ///
    /// Batched and residue-parallel, like [`RnsPoly::to_evaluation`].
    pub fn to_coefficient(&mut self, ring: &RnsRing) {
        use crate::backend::{LimbBatch, NttBackend};
        if self.repr == Representation::Coefficient {
            return;
        }
        self.ensure_host();
        self.mark_host_edit();
        let plan = ring.plan();
        crate::backend::with_default_backend(|be| {
            be.inverse_batch(&plan, LimbBatch::new(&mut self.data, self.n, self.level));
        });
        self.repr = Representation::Coefficient;
    }

    /// `self += other` (row-wise, representation-agnostic but must match).
    ///
    /// # Panics
    ///
    /// Panics on level or representation mismatch.
    pub fn add_assign(&mut self, other: &RnsPoly, ring: &RnsRing) {
        assert_eq!(self.level, other.level, "level mismatch");
        assert_eq!(self.repr, other.repr, "representation mismatch");
        other.assert_host_fresh();
        self.ensure_host();
        self.mark_host_edit();
        for i in 0..self.level {
            let p = ring.basis().primes()[i];
            let base = i * self.n;
            for j in 0..self.n {
                self.data[base + j] = add_mod(self.data[base + j], other.data[base + j], p);
            }
        }
    }

    /// `self -= other`.
    ///
    /// # Panics
    ///
    /// Panics on level or representation mismatch.
    pub fn sub_assign(&mut self, other: &RnsPoly, ring: &RnsRing) {
        assert_eq!(self.level, other.level, "level mismatch");
        assert_eq!(self.repr, other.repr, "representation mismatch");
        other.assert_host_fresh();
        self.ensure_host();
        self.mark_host_edit();
        for i in 0..self.level {
            let p = ring.basis().primes()[i];
            let base = i * self.n;
            for j in 0..self.n {
                self.data[base + j] = sub_mod(self.data[base + j], other.data[base + j], p);
            }
        }
    }

    /// Negate in place.
    pub fn negate(&mut self, ring: &RnsRing) {
        for i in 0..self.level {
            let p = ring.basis().primes()[i];
            for v in self.row_mut(i) {
                *v = neg_mod(*v, p);
            }
        }
    }

    /// Pointwise product (both operands must be in evaluation form).
    ///
    /// Runs through the thread-local backend's
    /// [`crate::backend::NttBackend::pointwise_batch`], using the plan's
    /// per-prime reduction strategy (Barrett or Montgomery — the canonical
    /// result is identical either way).
    ///
    /// # Panics
    ///
    /// Panics on level mismatch or if either operand is in coefficient
    /// form.
    pub fn mul_pointwise(&mut self, other: &RnsPoly, ring: &RnsRing) {
        use crate::backend::{LimbBatch, NttBackend};
        assert_eq!(self.level, other.level, "level mismatch");
        assert_eq!(self.repr, Representation::Evaluation, "lhs not in NTT form");
        assert_eq!(
            other.repr,
            Representation::Evaluation,
            "rhs not in NTT form"
        );
        other.assert_host_fresh();
        self.ensure_host();
        self.mark_host_edit();
        let plan = ring.plan();
        crate::backend::with_default_backend(|be| {
            be.pointwise_batch(
                &plan,
                LimbBatch::new(&mut self.data, self.n, self.level),
                &other.data,
            );
        });
    }

    /// A copy restricted to the first `level` primes (valid in either
    /// representation: rows are per-prime and independent).
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or exceeds the current level.
    pub fn truncated(&self, level: usize) -> RnsPoly {
        assert!(
            level >= 1 && level <= self.level,
            "invalid truncation level"
        );
        self.assert_host_fresh();
        RnsPoly {
            n: self.n,
            level,
            repr: self.repr,
            data: self.data[..level * self.n].to_vec(),
            mirror: None,
        }
    }

    /// Multiply row `i` by its own scalar residue `residues[i]` — used for
    /// multiplying by a big-integer constant given in RNS form.
    ///
    /// # Panics
    ///
    /// Panics if fewer residues than active levels are supplied.
    pub fn mul_scalar_residues(&mut self, residues: &[u64], ring: &RnsRing) {
        assert!(
            residues.len() >= self.level,
            "residue per active prime required"
        );
        for (i, &r) in residues.iter().enumerate().take(self.level) {
            let p = ring.basis().primes()[i];
            let s = r % p;
            for v in self.row_mut(i) {
                *v = ntt_math::mul_mod(*v, s, p);
            }
        }
    }

    /// Multiply every residue by a scalar (given as ordinary `u64`,
    /// reduced per prime).
    pub fn mul_scalar(&mut self, s: u64, ring: &RnsRing) {
        for i in 0..self.level {
            let p = ring.basis().primes()[i];
            let sp = s % p;
            for v in self.row_mut(i) {
                *v = ntt_math::mul_mod(*v, sp, p);
            }
        }
    }

    /// Drop the last active prime *without* rescaling (modulus switch
    /// bookkeeping for key-switching internals).
    ///
    /// # Panics
    ///
    /// Panics if only one level remains.
    pub fn drop_last_level(&mut self) {
        assert!(self.level > 1, "cannot drop the last remaining prime");
        self.ensure_host();
        self.mark_host_edit();
        self.level -= 1;
        self.data.truncate(self.level * self.n);
    }

    /// CKKS-style exact rescale: divide by the last active prime
    /// `p_L` — `c_i ← (c_i − c_L) · p_L^{-1} mod p_i` — and drop a level.
    /// Requires coefficient representation.
    ///
    /// # Panics
    ///
    /// Panics if in evaluation form or only one level remains.
    pub fn rescale(&mut self, ring: &RnsRing) {
        assert_eq!(
            self.repr,
            Representation::Coefficient,
            "rescale requires coefficient form"
        );
        assert!(self.level > 1, "cannot rescale past the last prime");
        self.ensure_host();
        self.mark_host_edit();
        rescale_rows(ring.basis().primes(), self.n, self.level, &mut self.data);
        self.level -= 1;
        self.data.truncate(self.level * self.n);
    }

    /// CRT-reconstruct coefficient `idx` across active primes, centered.
    ///
    /// Only meaningful in coefficient form; `None` if it overflows `i128`.
    ///
    /// # Panics
    ///
    /// Panics if in evaluation form or `idx >= N`.
    pub fn coefficient_centered(&self, ring: &RnsRing, idx: usize) -> Option<i128> {
        assert_eq!(
            self.repr,
            Representation::Coefficient,
            "reconstruction requires coefficient form"
        );
        assert!(idx < self.n, "coefficient index out of range");
        let residues: Vec<u64> = (0..self.level).map(|i| self.row(i)[idx]).collect();
        let basis = RnsBasis::new(ring.basis().primes()[..self.level].to_vec())
            .expect("prefix of a valid basis is valid");
        basis.reconstruct_centered(&residues)
    }
}

/// The CKKS rescale step on a raw `level × n` coefficient buffer: rows
/// `0..level-1` become `(row_i − row_last)·p_last^{-1} mod p_i`; the last
/// row is left untouched (callers drop it from the logical view). This is
/// the single reference implementation shared by [`RnsPoly::rescale`] and
/// every backend's device-side rescale, so the step cannot diverge across
/// substrates.
pub(crate) fn rescale_rows(primes: &[u64], n: usize, level: usize, data: &mut [u64]) {
    assert!(level > 1, "cannot rescale past the last prime");
    let last = level - 1;
    let p_last = primes[last];
    let (head, last_row) = data.split_at_mut(last * n);
    for (i, row) in head.chunks_exact_mut(n).enumerate() {
        let p = primes[i];
        let inv = ntt_math::inv_mod(p_last % p, p).expect("distinct primes are coprime");
        for (x, &lr) in row.iter_mut().zip(last_row.iter()) {
            let diff = sub_mod(*x, lr % p, p);
            *x = ntt_math::mul_mod(diff, inv, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::negacyclic_convolution;

    #[test]
    fn single_prime_multiply_matches_naive() {
        let ring = NegacyclicRing::new_with_bits(32, 60).unwrap();
        let p = ring.modulus();
        let a = Polynomial::from_coeffs((1..=32).collect(), 32);
        let b = Polynomial::from_coeffs((0..32).map(|i| i * i + 1).collect(), 32);
        let c = ring.multiply(&a, &b);
        assert_eq!(
            c.coeffs(),
            &negacyclic_convolution(a.coeffs(), b.coeffs(), p)[..]
        );
    }

    #[test]
    fn add_sub_are_inverses() {
        let ring = NegacyclicRing::new_with_bits(16, 59).unwrap();
        let a = Polynomial::from_coeffs(vec![5, 4, 3], 16);
        let b = Polynomial::from_coeffs(vec![1, 2, 3, 4], 16);
        let s = ring.add(&a, &b);
        assert_eq!(ring.sub(&s, &b), a);
    }

    fn small_ring() -> RnsRing {
        RnsRing::new(16, ntt_math::ntt_primes(59, 32, 3)).unwrap()
    }

    #[test]
    fn rns_multiply_matches_integer_convolution() {
        let ring = small_ring();
        let a = RnsPoly::from_i64_coeffs(&ring, &[3, -1, 4, 1, -5]);
        let b = RnsPoly::from_i64_coeffs(&ring, &[-2, 7, 1]);
        let c = ring.multiply(&a, &b);
        // Check a few coefficients against exact integer negacyclic conv.
        // (3 - x + 4x^2 + x^3 - 5x^4)(-2 + 7x + x^2):
        // coeff 0: 3*-2 = -6
        // coeff 1: 3*7 + (-1)(-2) = 23
        // coeff 2: 3*1 + (-1)*7 + 4*(-2) = -12
        assert_eq!(c.coefficient_centered(&ring, 0), Some(-6));
        assert_eq!(c.coefficient_centered(&ring, 1), Some(23));
        assert_eq!(c.coefficient_centered(&ring, 2), Some(-12));
    }

    #[test]
    fn rns_negacyclic_wraparound() {
        let ring = small_ring();
        // x^15 * x = -x^0? x^15 * x^1 = x^16 = -1.
        let a = RnsPoly::from_i64_coeffs(&ring, &{
            let mut v = vec![0i64; 16];
            v[15] = 1;
            v
        });
        let b = RnsPoly::from_i64_coeffs(&ring, &[0, 1]);
        let c = ring.multiply(&a, &b);
        assert_eq!(c.coefficient_centered(&ring, 0), Some(-1));
    }

    #[test]
    fn evaluation_roundtrip_preserves_value() {
        let ring = small_ring();
        let a = RnsPoly::from_i64_coeffs(&ring, &[1, -2, 3, -4]);
        let mut b = a.clone();
        b.to_evaluation(&ring);
        assert_eq!(b.repr(), Representation::Evaluation);
        b.to_coefficient(&ring);
        assert_eq!(a, b);
    }

    #[test]
    fn add_assign_homomorphic_in_both_domains() {
        let ring = small_ring();
        let a = RnsPoly::from_i64_coeffs(&ring, &[10, 20]);
        let b = RnsPoly::from_i64_coeffs(&ring, &[-4, 6]);
        // Coefficient domain.
        let mut s1 = a.clone();
        s1.add_assign(&b, &ring);
        assert_eq!(s1.coefficient_centered(&ring, 0), Some(6));
        // Evaluation domain.
        let (mut ea, mut eb) = (a, b);
        ea.to_evaluation(&ring);
        eb.to_evaluation(&ring);
        ea.add_assign(&eb, &ring);
        ea.to_coefficient(&ring);
        assert_eq!(ea.coefficient_centered(&ring, 1), Some(26));
    }

    #[test]
    fn rescale_divides_by_last_prime() {
        let ring = small_ring();
        let p_last = ring.basis().primes()[2];
        // Encode p_last * 7 so rescale yields exactly 7.
        let mut x = RnsPoly::zero(&ring);
        for (row, &p) in ring.basis().primes().iter().enumerate() {
            x.row_mut(row)[0] = ntt_math::mul_mod(p_last % p, 7, p);
        }
        x.rescale(&ring);
        assert_eq!(x.level(), 2);
        assert_eq!(x.coefficient_centered(&ring, 0), Some(7));
    }

    #[test]
    fn rescale_rounds_inexact_values() {
        let ring = small_ring();
        let p_last = ring.basis().primes()[2] as i128;
        // Value v = p_last * 9 + r for small r: rescale gives 9 + (r - c)/p
        // exactly in RNS — i.e. some integer near 9. For exactness checks we
        // use v = p_last*9 + p_last/2 rounded... here just assert closeness.
        let v = p_last * 9 + 3;
        let mut x = RnsPoly::zero(&ring);
        for (row, &p) in ring.basis().primes().iter().enumerate() {
            let vp = (v % p as i128) as u64;
            x.row_mut(row)[0] = vp;
        }
        x.rescale(&ring);
        // (v - (v mod p_last)) / p_last = 9 exactly.
        assert_eq!(x.coefficient_centered(&ring, 0), Some(9));
    }

    #[test]
    fn scalar_multiplication() {
        let ring = small_ring();
        let mut a = RnsPoly::from_i64_coeffs(&ring, &[5, -3]);
        a.mul_scalar(11, &ring);
        assert_eq!(a.coefficient_centered(&ring, 0), Some(55));
        assert_eq!(a.coefficient_centered(&ring, 1), Some(-33));
    }

    #[test]
    #[should_panic(expected = "level mismatch")]
    fn mismatched_levels_rejected() {
        let ring = small_ring();
        let a = RnsPoly::zero(&ring);
        let mut b = RnsPoly::zero(&ring);
        b.drop_last_level();
        let mut a2 = a;
        a2.add_assign(&b, &ring);
    }

    #[test]
    #[should_panic(expected = "not in NTT form")]
    fn pointwise_requires_evaluation_form() {
        let ring = small_ring();
        let mut a = RnsPoly::zero(&ring);
        let b = RnsPoly::zero(&ring);
        a.mul_pointwise(&b, &ring);
    }
}
