//! O(N²) reference transforms — the correctness oracle.
//!
//! Everything here follows the paper's §III definitions directly:
//!
//! * `Xk = Σ xn ψ^{n(2k+1)} mod p` — the merged negacyclic forward NTT
//!   (natural-order output).
//! * Negacyclic convolution `ck = Σ_{i<=k} a_i b_{k-i} − Σ_{i>k} a_i b_{N+k−i}`.
//!
//! These are quadratic and only used by tests and examples on small sizes.

use ntt_math::modops::{add_mod, mul_mod, pow_mod, sub_mod};

/// Naive merged negacyclic forward NTT (natural-order output).
///
/// `psi` must be a primitive 2N-th root of unity mod `p`.
/// Output: `X[k] = Σ_n a[n] · psi^{n(2k+1)} mod p`.
///
/// # Panics
///
/// Panics if `a` is empty or its length is not a power of two.
pub fn naive_ntt(a: &[u64], psi: u64, p: u64) -> Vec<u64> {
    let n = a.len() as u64;
    assert!(
        n > 0 && n.is_power_of_two(),
        "length must be a power of two"
    );
    (0..n)
        .map(|k| {
            let mut acc = 0u64;
            for (i, &x) in a.iter().enumerate() {
                let e = (i as u64 * (2 * k + 1)) % (2 * n);
                acc = add_mod(acc, mul_mod(x % p, pow_mod(psi, e, p), p), p);
            }
            acc
        })
        .collect()
}

/// Naive merged negacyclic inverse NTT (natural-order input and output).
///
/// Inverts [`naive_ntt`]: `a[n] = N^{-1} · psi^{-n} Σ_k X[k] ψ^{-2nk}`.
pub fn naive_intt(x: &[u64], psi: u64, p: u64) -> Vec<u64> {
    let n = x.len() as u64;
    assert!(
        n > 0 && n.is_power_of_two(),
        "length must be a power of two"
    );
    let n_inv = ntt_math::inv_mod(n % p, p).expect("N invertible mod p");
    let psi_inv = ntt_math::inv_mod(psi, p).expect("psi invertible mod p");
    (0..n)
        .map(|i| {
            let mut acc = 0u64;
            for (k, &v) in x.iter().enumerate() {
                let e = (i * (2 * k as u64 + 1)) % (2 * n);
                acc = add_mod(acc, mul_mod(v % p, pow_mod(psi_inv, e, p), p), p);
            }
            mul_mod(acc, n_inv, p)
        })
        .collect()
}

/// Naive negacyclic convolution: coefficients of `A(X)·B(X) mod (X^N + 1)`.
///
/// # Panics
///
/// Panics if lengths differ or are not a power of two.
pub fn negacyclic_convolution(a: &[u64], b: &[u64], p: u64) -> Vec<u64> {
    assert_eq!(a.len(), b.len(), "operand lengths must match");
    let n = a.len();
    assert!(n.is_power_of_two(), "length must be a power of two");
    let mut c = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let prod = mul_mod(ai % p, bj % p, p);
            if i + j < n {
                c[i + j] = add_mod(c[i + j], prod, p);
            } else {
                // X^(i+j) = -X^(i+j-N)
                c[i + j - n] = sub_mod(c[i + j - n], prod, p);
            }
        }
    }
    c
}

/// Naive cyclic (non-negacyclic) NTT: `X[k] = Σ a[n]·w^{nk}` with `w` a
/// primitive N-th root of unity. Used to cross-check the DFT-style code
/// paths that skip the negacyclic merge.
pub fn naive_cyclic_ntt(a: &[u64], w: u64, p: u64) -> Vec<u64> {
    let n = a.len() as u64;
    assert!(
        n > 0 && n.is_power_of_two(),
        "length must be a power of two"
    );
    (0..n)
        .map(|k| {
            let mut acc = 0u64;
            for (i, &x) in a.iter().enumerate() {
                let e = (i as u64 * k) % n;
                acc = add_mod(acc, mul_mod(x % p, pow_mod(w, e, p), p), p);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt_math::{ntt_prime, primitive_root_of_unity};

    fn setup(n: usize) -> (u64, u64) {
        let p = ntt_prime(60, 2 * n as u64).unwrap();
        let psi = primitive_root_of_unity(2 * n as u64, p).unwrap();
        (p, psi)
    }

    #[test]
    fn ntt_intt_roundtrip() {
        let n = 16;
        let (p, psi) = setup(n);
        let a: Vec<u64> = (0..n as u64).map(|i| i * i + 1).collect();
        let x = naive_ntt(&a, psi, p);
        assert_eq!(naive_intt(&x, psi, p), a);
    }

    #[test]
    fn ntt_of_delta_is_psi_powers() {
        // a = (0, 1, 0, ...) -> X[k] = psi^(2k+1)
        let n = 8;
        let (p, psi) = setup(n);
        let mut a = vec![0u64; n];
        a[1] = 1;
        let x = naive_ntt(&a, psi, p);
        for (k, &v) in x.iter().enumerate() {
            assert_eq!(v, ntt_math::pow_mod(psi, 2 * k as u64 + 1, p));
        }
    }

    #[test]
    fn pointwise_product_is_negacyclic_convolution() {
        let n = 16;
        let (p, psi) = setup(n);
        let a: Vec<u64> = (0..n as u64).map(|i| i + 1).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| 3 * i + 2).collect();
        let xa = naive_ntt(&a, psi, p);
        let xb = naive_ntt(&b, psi, p);
        let prod: Vec<u64> = xa
            .iter()
            .zip(&xb)
            .map(|(&x, &y)| ntt_math::mul_mod(x, y, p))
            .collect();
        let c = naive_intt(&prod, psi, p);
        assert_eq!(c, negacyclic_convolution(&a, &b, p));
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        // x^(n-1) * x = x^n = -1
        let n = 8;
        let (p, _) = setup(n);
        let mut a = vec![0u64; n];
        a[n - 1] = 1;
        let mut b = vec![0u64; n];
        b[1] = 1;
        let c = negacyclic_convolution(&a, &b, p);
        assert_eq!(c[0], p - 1);
        assert!(c[1..].iter().all(|&v| v == 0));
    }

    #[test]
    fn cyclic_ntt_of_ones() {
        // NTT of all-ones is (N, 0, 0, ...) for the cyclic transform.
        let n = 8u64;
        let (p, psi) = setup(n as usize);
        let w = ntt_math::mul_mod(psi, psi, p); // primitive N-th root
        let x = naive_cyclic_ntt(&vec![1u64; n as usize], w, p);
        assert_eq!(x[0], n % p);
        assert!(x[1..].iter().all(|&v| v == 0));
    }
}
