//! On-the-fly twiddling (OT) — the paper's §VII contribution.
//!
//! A twiddle `Ψ[i] = psi^{bitrev(i)}` can be factorized by writing its
//! exponent `e` in base `B`: `e = Σ_l d_l · B^l`. Storing only the factor
//! tables `psi^{d·B^l}` (with Shoup companions) shrinks the precomputed
//! data from `N` entries to `Σ_l min(B, N/B^l)` entries — for `N = 2^17`
//! and `B = 1024`, from 131072 to `1024 + 128` entries.
//!
//! The trick that makes this NTT-compatible (the paper's key observation):
//! we never *materialize* `w = w_hi · w_lo` — that would need a fresh Shoup
//! companion, costing a native modular reduction. Instead the butterfly
//! multiplies the **operand** by the factors consecutively
//! (`x' = w_lo · x`, then `w_hi · x'`), each step using the factor's own
//! precomputed companion. Cost: one extra Shoup modmul per twiddle per
//! extra level; zero native reductions.
//!
//! Every level is always applied (even when its digit is zero, multiplying
//! by `psi^0 = 1`): uniform work per lane avoids warp divergence on the
//! GPU and matches the paper's "+1 modmul" accounting for base-1024.

use crate::bitrev::bit_reverse;
use crate::table::NttTable;
use ntt_math::shoup::{mul_shoup, mul_shoup_lazy, precompute};
use ntt_math::{mul_mod, pow_mod};

/// One factor level: `w[d] = psi^{d · B^level}` for digit values `d`.
#[derive(Debug, Clone)]
struct OtLevel {
    w: Vec<u64>,
    shoup: Vec<u64>,
}

/// Factorized twiddle table for on-the-fly generation.
///
/// # Example
///
/// ```
/// use ntt_core::{NttTable, OtTable};
/// let t = NttTable::new_with_bits(1 << 12, 60)?;
/// let ot = OtTable::new(&t, 64);
/// // Same product, far smaller table:
/// assert_eq!(ot.apply(12345, 1000), t.forward(1000).mul(12345));
/// assert!(ot.table_bytes() < t.forward_table_bytes() / 10);
/// # Ok::<(), ntt_math::root::RootError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OtTable {
    p: u64,
    n: usize,
    log_n: u32,
    base: usize,
    levels: Vec<OtLevel>,
}

impl OtTable {
    /// Build the base-`base` factorization of `table`'s forward twiddles.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not a power of two ≥ 2.
    pub fn new(table: &NttTable, base: usize) -> Self {
        assert!(
            base.is_power_of_two() && base >= 2,
            "base must be a power of two >= 2"
        );
        let p = table.modulus();
        let psi = table.psi();
        let n = table.n();
        let mut levels = Vec::new();
        let mut step: u64 = 1; // B^level
        while step < n as u64 {
            let digits = base.min(((n as u64).div_ceil(step)) as usize);
            let mut w = Vec::with_capacity(digits);
            let mut shoup = Vec::with_capacity(digits);
            for d in 0..digits as u64 {
                let v = pow_mod(psi, d * step, p);
                w.push(v);
                shoup.push(precompute(v, p));
            }
            levels.push(OtLevel { w, shoup });
            step *= base as u64;
        }
        Self {
            p,
            n,
            log_n: table.log_n(),
            base,
            levels,
        }
    }

    /// The factorization base `B`.
    #[inline]
    pub fn base(&self) -> usize {
        self.base
    }

    /// Number of factor levels = modmuls per twiddle application.
    #[inline]
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Total number of precomputed entries: `Σ_l min(B, N/B^l)`.
    /// For `N = 2^17`, `B = 1024` this is the paper's `1024 + 2^17/1024`.
    pub fn entry_count(&self) -> usize {
        self.levels.iter().map(|l| l.w.len()).sum()
    }

    /// Table bytes including Shoup companions (16 B per entry).
    pub fn table_bytes(&self) -> usize {
        self.entry_count() * 16
    }

    /// Exponent of `psi` behind twiddle index `i` (bit-reversed layout).
    #[inline]
    pub fn exponent(&self, twiddle_index: usize) -> usize {
        bit_reverse(twiddle_index % self.n, self.log_n)
    }

    /// Multiply `x` by `Ψ[twiddle_index]`, generating the twiddle on the
    /// fly: one Shoup modmul per level. Fully reduced result.
    pub fn apply(&self, x: u64, twiddle_index: usize) -> u64 {
        let mut e = self.exponent(twiddle_index);
        let mut r = x % self.p;
        for level in &self.levels {
            let d = e % self.base;
            e /= self.base;
            r = mul_shoup(r, level.w[d], level.shoup[d], self.p);
        }
        debug_assert_eq!(e, 0);
        r
    }

    /// Lazy variant: accepts any `u64` operand, returns a value in
    /// `[0, 2p)` (each chained factor application is a lazy Shoup product).
    pub fn apply_lazy(&self, x: u64, twiddle_index: usize) -> u64 {
        let mut e = self.exponent(twiddle_index);
        let mut r = x;
        for level in &self.levels {
            let d = e % self.base;
            e /= self.base;
            r = mul_shoup_lazy(r, level.w[d], level.shoup[d], self.p);
        }
        r
    }

    /// Reconstruct the twiddle value itself (test/diagnostic use; the whole
    /// point of OT is that kernels never do this).
    pub fn twiddle_value(&self, twiddle_index: usize) -> u64 {
        let mut e = self.exponent(twiddle_index);
        let mut r = 1u64;
        for level in &self.levels {
            let d = e % self.base;
            e /= self.base;
            r = mul_mod(r, level.w[d], self.p);
        }
        r
    }

    /// Extra Shoup modmuls per butterfly relative to the precomputed-table
    /// path (which uses exactly one).
    pub fn extra_modmuls(&self) -> usize {
        self.levels().saturating_sub(1)
    }
}

/// Cost model point for the base sweep (§VII: "dividing into base-1024
/// performs best"): table bytes vs extra modmuls per butterfly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OtCost {
    /// Factorization base.
    pub base: usize,
    /// Precomputed entries (values + companions counted as one entry pair).
    pub entries: usize,
    /// Bytes of the factor tables (16 B per entry).
    pub table_bytes: usize,
    /// Shoup modmuls per twiddle application.
    pub modmuls: usize,
}

/// Enumerate the size/compute trade-off across factorization bases for an
/// N-point transform — the data behind the paper's base-1024 choice.
pub fn base_sweep(n: usize, bases: &[usize]) -> Vec<OtCost> {
    bases
        .iter()
        .map(|&base| {
            let mut entries = 0usize;
            let mut levels = 0usize;
            let mut step = 1usize;
            while step < n {
                entries += base.min(n.div_ceil(step));
                levels += 1;
                step = step.saturating_mul(base);
            }
            OtCost {
                base,
                entries,
                table_bytes: entries * 16,
                modmuls: levels,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> NttTable {
        NttTable::new_with_bits(n, 60).unwrap()
    }

    #[test]
    fn reconstructs_every_twiddle() {
        let t = table(256);
        for base in [2usize, 4, 16, 64] {
            let ot = OtTable::new(&t, base);
            for i in 0..256 {
                assert_eq!(
                    ot.twiddle_value(i),
                    t.forward(i).value(),
                    "base {base}, index {i}"
                );
            }
        }
    }

    #[test]
    fn apply_matches_direct_multiplication() {
        let t = table(128);
        let ot = OtTable::new(&t, 16);
        let xs = [0u64, 1, 12345, t.modulus() - 1];
        for i in 0..128 {
            for &x in &xs {
                assert_eq!(ot.apply(x, i), t.forward(i).mul(x), "i={i} x={x}");
            }
        }
    }

    #[test]
    fn apply_lazy_is_congruent_and_bounded() {
        let t = table(64);
        let p = t.modulus();
        let ot = OtTable::new(&t, 8);
        for i in 0..64 {
            for x in [0u64, p - 1, 2 * p - 1, 4 * p - 1] {
                let r = ot.apply_lazy(x, i);
                assert!(r < 2 * p);
                assert_eq!(r % p, t.forward(i).mul(x % p));
            }
        }
    }

    #[test]
    fn paper_entry_count_for_n17_base1024() {
        // The paper: "the number of the precomputed twiddle factors becomes
        // 1024 + 2^17/1024 with base-1024".
        let sweep = base_sweep(1 << 17, &[1024]);
        assert_eq!(sweep[0].entries, 1024 + (1 << 17) / 1024);
        assert_eq!(sweep[0].modmuls, 2);
    }

    #[test]
    fn base2_needs_logn_levels() {
        let costs = base_sweep(1 << 17, &[2]);
        assert_eq!(costs[0].modmuls, 17);
        assert_eq!(costs[0].entries, 17 * 2);
    }

    #[test]
    fn bigger_base_fewer_modmuls_more_bytes() {
        let costs = base_sweep(1 << 17, &[4, 64, 1024, 4096]);
        for w in costs.windows(2) {
            assert!(w[0].modmuls >= w[1].modmuls);
        }
        // 4096 stores more than 1024+128 entries.
        assert!(costs[3].entries > costs[2].entries);
    }

    #[test]
    fn level_sizes_match_formula() {
        let t = table(1 << 10);
        let ot = OtTable::new(&t, 32);
        // levels: 32 (digits of B^0), 32 (B^1), 1024/1024=1 -> min(32, 1) = 1
        assert_eq!(ot.levels(), 2);
        assert_eq!(ot.entry_count(), 32 + 32);
    }

    #[test]
    fn extra_modmuls_accounting() {
        let t = table(1 << 10);
        assert_eq!(OtTable::new(&t, 32).extra_modmuls(), 1);
        assert_eq!(OtTable::new(&t, 2).extra_modmuls(), 9);
        assert_eq!(OtTable::new(&t, 1 << 10).extra_modmuls(), 0);
    }
}
