//! Primitive roots and roots of unity modulo a prime.
//!
//! NTT with merged negacyclic twiddles needs `psi`, a primitive 2N-th root
//! of unity mod `p` (`psi^(2N) ≡ 1`, `psi^N ≡ -1`). Such a root exists iff
//! `2N | p - 1`, which is exactly the structure [`crate::prime::ntt_prime`]
//! guarantees.

use crate::modops::{inv_mod, pow_mod};
use crate::prime::{distinct_prime_factors, is_prime};

/// Smallest generator of the multiplicative group `(Z/pZ)^*` for prime `p`.
///
/// Setup-time routine: tries candidates `2, 3, ...` and checks
/// `g^((p-1)/q) != 1` for every distinct prime factor `q` of `p - 1`.
///
/// # Errors
///
/// Returns [`RootError::NotPrime`] if `p` fails the primality test.
///
/// # Example
///
/// ```
/// assert_eq!(ntt_math::min_primitive_root(17).unwrap(), 3);
/// ```
pub fn min_primitive_root(p: u64) -> Result<u64, RootError> {
    if !is_prime(p) {
        return Err(RootError::NotPrime { p });
    }
    if p == 2 {
        return Ok(1);
    }
    let factors = distinct_prime_factors(p - 1);
    'cand: for g in 2..p {
        for &q in &factors {
            if pow_mod(g, (p - 1) / q, p) == 1 {
                continue 'cand;
            }
        }
        return Ok(g);
    }
    unreachable!("every prime has a primitive root")
}

/// A primitive `order`-th root of unity mod prime `p`.
///
/// `order` must be a power of two dividing `p - 1` (the NTT case). The
/// returned `psi` satisfies `psi^order ≡ 1` and `psi^(order/2) ≡ -1`.
///
/// # Errors
///
/// * [`RootError::NotPrime`] if `p` is not prime.
/// * [`RootError::OrderDoesNotDivide`] if `order ∤ p - 1`.
/// * [`RootError::OrderNotPowerOfTwo`] if `order` is not a power of two.
///
/// # Example
///
/// ```
/// let p = ntt_math::ntt_prime(60, 1 << 11).unwrap();
/// let psi = ntt_math::primitive_root_of_unity(1 << 11, p).unwrap();
/// assert_eq!(ntt_math::pow_mod(psi, 1 << 11, p), 1);
/// assert_eq!(ntt_math::pow_mod(psi, 1 << 10, p), p - 1); // psi^N = -1
/// ```
pub fn primitive_root_of_unity(order: u64, p: u64) -> Result<u64, RootError> {
    if !order.is_power_of_two() {
        return Err(RootError::OrderNotPowerOfTwo { order });
    }
    if !is_prime(p) {
        return Err(RootError::NotPrime { p });
    }
    if !(p - 1).is_multiple_of(order) {
        return Err(RootError::OrderDoesNotDivide { order, p });
    }
    let g = min_primitive_root(p)?;
    let psi = pow_mod(g, (p - 1) / order, p);
    debug_assert_eq!(pow_mod(psi, order, p), 1);
    debug_assert!(order < 2 || pow_mod(psi, order / 2, p) == p - 1);
    Ok(psi)
}

/// Inverse of a root of unity: `psi^{-1} mod p`.
///
/// # Errors
///
/// Returns [`RootError::NoInverse`] when `psi ≡ 0 (mod p)`.
pub fn inverse_root(psi: u64, p: u64) -> Result<u64, RootError> {
    inv_mod(psi, p).ok_or(RootError::NoInverse { value: psi, p })
}

/// Errors from root-of-unity computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootError {
    /// The supplied modulus is not prime.
    NotPrime {
        /// The offending modulus.
        p: u64,
    },
    /// The requested order does not divide `p - 1`.
    OrderDoesNotDivide {
        /// Requested multiplicative order.
        order: u64,
        /// The prime modulus.
        p: u64,
    },
    /// The requested order is not a power of two.
    OrderNotPowerOfTwo {
        /// Requested multiplicative order.
        order: u64,
    },
    /// The value has no inverse mod `p`.
    NoInverse {
        /// The non-invertible value.
        value: u64,
        /// The modulus.
        p: u64,
    },
}

impl std::fmt::Display for RootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RootError::NotPrime { p } => write!(f, "{p} is not prime"),
            RootError::OrderDoesNotDivide { order, p } => {
                write!(f, "order {order} does not divide p - 1 for p = {p}")
            }
            RootError::OrderNotPowerOfTwo { order } => {
                write!(f, "order {order} is not a power of two")
            }
            RootError::NoInverse { value, p } => {
                write!(f, "{value} has no inverse mod {p}")
            }
        }
    }
}

impl std::error::Error for RootError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::ntt_prime;

    #[test]
    fn primitive_root_of_17() {
        assert_eq!(min_primitive_root(17).unwrap(), 3);
        assert_eq!(min_primitive_root(2).unwrap(), 1);
        assert_eq!(min_primitive_root(7).unwrap(), 3);
    }

    #[test]
    fn rejects_composite() {
        assert_eq!(min_primitive_root(15), Err(RootError::NotPrime { p: 15 }));
    }

    #[test]
    fn root_of_unity_has_exact_order() {
        let p = ntt_prime(59, 1 << 12).unwrap();
        let order = 1u64 << 12;
        let psi = primitive_root_of_unity(order, p).unwrap();
        assert_eq!(pow_mod(psi, order, p), 1);
        // No smaller power-of-two order: psi^(order/2) = -1, not 1.
        assert_eq!(pow_mod(psi, order / 2, p), p - 1);
    }

    #[test]
    fn inverse_root_multiplies_to_one() {
        let p = ntt_prime(60, 1 << 10).unwrap();
        let psi = primitive_root_of_unity(1 << 10, p).unwrap();
        let inv = inverse_root(psi, p).unwrap();
        assert_eq!(crate::modops::mul_mod(psi, inv, p), 1);
    }

    #[test]
    fn order_validation() {
        let p = 17;
        assert_eq!(
            primitive_root_of_unity(3, p),
            Err(RootError::OrderNotPowerOfTwo { order: 3 })
        );
        assert_eq!(
            primitive_root_of_unity(32, p),
            Err(RootError::OrderDoesNotDivide { order: 32, p })
        );
    }

    #[test]
    fn error_display_is_informative() {
        let e = RootError::OrderDoesNotDivide { order: 8, p: 17 };
        assert!(e.to_string().contains("does not divide"));
    }
}
