//! Modular arithmetic for NTT-based homomorphic encryption.
//!
//! This crate provides the integer substrate that the paper
//! *"Accelerating Number Theoretic Transformations for Bootstrappable
//! Homomorphic Encryption on GPUs"* (IISWC 2020) builds on:
//!
//! * [`wide`] — portable 64×64→128-bit multiplication helpers.
//! * [`modops`] — plain modular operations (add/sub/mul/pow/inverse) using
//!   the "native" `u128 %` reduction the paper benchmarks against.
//! * [`barrett`] — Barrett reduction for a fixed 64-bit modulus.
//! * [`shoup`] — Shoup's modular multiplication with a per-multiplicand
//!   precomputed companion (the paper's Algorithm 4), including the lazy
//!   `[0, 2p)` variant used by Harvey-style butterflies.
//! * [`mont`] — Montgomery-form arithmetic (an alternative reduction used
//!   for ablation benchmarks).
//! * [`prime`] — deterministic Miller–Rabin for `u64` and generation of
//!   NTT-friendly primes `p ≡ 1 (mod 2N)`.
//! * [`root`] — primitive roots and 2N-th roots of unity.
//! * [`bigint`] — a minimal unsigned big integer, sufficient for CRT
//!   reconstruction and `log2 Q` computations.
//!
//! # Example
//!
//! ```
//! use ntt_math::{prime::ntt_prime, root::primitive_root_of_unity, shoup::ShoupMul};
//!
//! let n = 1 << 10;
//! let p = ntt_prime(60, 2 * n).expect("prime exists");
//! assert_eq!(p % (2 * n as u64), 1);
//! let psi = primitive_root_of_unity(2 * n as u64, p).unwrap();
//! let w = ShoupMul::new(psi, p);
//! // Multiplying by psi with Shoup's method matches the native reduction.
//! assert_eq!(w.mul(12345), (12345u128 * psi as u128 % p as u128) as u64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barrett;
pub mod bigint;
pub mod modops;
pub mod mont;
pub mod prime;
pub mod root;
pub mod shoup;
pub mod wide;

pub use barrett::Barrett;
pub use bigint::BigUint;
pub use modops::{add_mod, inv_mod, mul_mod, neg_mod, pow_mod, sub_mod};
pub use prime::{is_prime, ntt_prime, ntt_primes};
pub use root::{min_primitive_root, primitive_root_of_unity};
pub use shoup::ShoupMul;
