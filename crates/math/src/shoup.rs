//! Shoup's modular multiplication (the paper's Algorithm 4).
//!
//! When one operand `w < p` is known in advance (twiddle factors are), we can
//! precompute the companion word `w' = floor(w * 2^64 / p)`. A product is
//! then
//!
//! ```text
//! q = hi64(b * w')            // estimate of floor(b*w / p), off by at most 1
//! r = (b*w - q*p) mod 2^64    // in [0, 2p)
//! if r >= p { r -= p }
//! ```
//!
//! — two `mul_hi`-class multiplies and no division. The catch, and the core
//! of the paper's memory-bandwidth story, is that **every twiddle factor
//! needs its own companion word**, doubling the precomputed-table bytes.
//!
//! The lazy variant [`ShoupMul::mul_lazy`] skips the final conditional
//! subtraction and returns a value in `[0, 2p)`; combined with the Harvey
//! butterfly (operands in `[0, 4p)`, requiring `p < 2^62`) it removes most
//! corrections from the NTT inner loop.

use crate::wide::mul_hi;

/// Largest modulus usable with the lazy `[0, 4p)` butterfly: `p < 2^62`.
pub const MAX_LAZY_MODULUS: u64 = 1 << 62;

/// A multiplicand `w` with its precomputed Shoup companion for modulus `p`.
///
/// # Example
///
/// ```
/// use ntt_math::ShoupMul;
/// let p = (1u64 << 61) - 1;
/// let w = ShoupMul::new(12345678, p);
/// assert_eq!(w.mul(987654321), ntt_math::mul_mod(987654321, 12345678, p));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShoupMul {
    /// The fixed multiplicand, `w < p`.
    w: u64,
    /// `floor(w * 2^64 / p)` — the table entry that doubles NTT table sizes.
    w_shoup: u64,
    /// The modulus.
    p: u64,
}

impl ShoupMul {
    /// Precompute the companion for multiplicand `w` and modulus `p`.
    ///
    /// # Panics
    ///
    /// Panics if `w >= p` or `p < 2`.
    #[inline]
    pub fn new(w: u64, p: u64) -> Self {
        assert!(p >= 2, "modulus must be at least 2");
        assert!(w < p, "multiplicand must be reduced mod p");
        Self {
            w,
            w_shoup: precompute(w, p),
            p,
        }
    }

    /// Rebuild from raw parts (e.g. values loaded from a simulated GPU
    /// memory). The caller must guarantee `w_shoup == floor(w*2^64/p)`;
    /// this is checked only in debug builds.
    #[inline]
    pub fn from_parts(w: u64, w_shoup: u64, p: u64) -> Self {
        debug_assert_eq!(w_shoup, precompute(w % p, p));
        Self { w, w_shoup, p }
    }

    /// The multiplicand `w`.
    #[inline]
    pub fn value(&self) -> u64 {
        self.w
    }

    /// The precomputed companion `floor(w * 2^64 / p)`.
    #[inline]
    pub fn companion(&self) -> u64 {
        self.w_shoup
    }

    /// The modulus `p`.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// `(b * w) mod p`, fully reduced. Accepts any `b < 2^64` as long as
    /// `p <= 2^63` (the lazy result fits before the final correction).
    #[inline(always)]
    pub fn mul(&self, b: u64) -> u64 {
        let r = self.mul_lazy(b);
        if r >= self.p {
            r - self.p
        } else {
            r
        }
    }

    /// `(b * w) mod p` in `[0, 2p)` — the Harvey lazy product.
    #[inline(always)]
    pub fn mul_lazy(&self, b: u64) -> u64 {
        mul_shoup_lazy(b, self.w, self.w_shoup, self.p)
    }
}

impl std::fmt::Display for ShoupMul {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (mod {})", self.w, self.p)
    }
}

/// Compute the Shoup companion `floor(w * 2^64 / p)` for `w < p`.
#[inline]
pub fn precompute(w: u64, p: u64) -> u64 {
    debug_assert!(w < p);
    ((u128::from(w) << 64) / u128::from(p)) as u64
}

/// Free-function lazy Shoup product: `(b * w) mod p` in `[0, 2p)`.
///
/// `w_shoup` must equal [`precompute`]`(w, p)`. Used directly by kernels
/// that keep `(w, w_shoup)` as plain words in simulated memory.
#[inline(always)]
pub fn mul_shoup_lazy(b: u64, w: u64, w_shoup: u64, p: u64) -> u64 {
    let q = mul_hi(b, w_shoup);
    b.wrapping_mul(w).wrapping_sub(q.wrapping_mul(p))
}

/// Free-function fully reduced Shoup product.
#[inline(always)]
pub fn mul_shoup(b: u64, w: u64, w_shoup: u64, p: u64) -> u64 {
    let r = mul_shoup_lazy(b, w, w_shoup, p);
    if r >= p {
        r - p
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modops::mul_mod;

    #[test]
    fn matches_native_exhaustive_small() {
        let p = 257;
        for w in 0..p {
            let s = ShoupMul::new(w, p);
            for b in 0..p {
                assert_eq!(s.mul(b), mul_mod(b, w, p), "b={b} w={w}");
            }
        }
    }

    #[test]
    fn matches_native_large() {
        let p = (1u64 << 59) + 21; // 59-bit, below the 2^62 lazy bound
        let ws = [1u64, 2, p - 1, p / 2, 0x0123_4567_89AB_CDEF % p];
        let bs = [0u64, 1, p - 1, p / 3, 0xFEDC_BA98_7654_3210 % p];
        for &w in &ws {
            let s = ShoupMul::new(w, p);
            for &b in &bs {
                assert_eq!(s.mul(b), mul_mod(b, w, p));
            }
        }
    }

    #[test]
    fn lazy_result_is_within_2p() {
        let p = (1u64 << 61) - 1;
        let s = ShoupMul::new(p - 1, p);
        for b in [0u64, 1, p - 1, p, 2 * p - 1, u64::MAX % (2 * p)] {
            let r = s.mul_lazy(b);
            assert!(r < 2 * p, "lazy result {r} out of [0, 2p)");
            assert_eq!(r % p, mul_mod(b % p, p - 1, p));
        }
    }

    #[test]
    fn lazy_accepts_unreduced_operand_up_to_beta() {
        // Harvey's analysis allows any b < 2^64 when p < 2^62.
        let p = (1u64 << 62) - 57;
        let w = 0x3FFF_FFFF_FFFF_F00D % p;
        let s = ShoupMul::new(w, p);
        for b in [u64::MAX, u64::MAX - 1, 1u64 << 63, 4 * p - 1] {
            let r = s.mul_lazy(b);
            assert!(r < 2 * p);
            assert_eq!(r % p, mul_mod(b % p, w, p));
        }
    }

    #[test]
    fn from_parts_roundtrip() {
        let p = 0x1FFF_FFFF_FFFF_FFFF;
        let s = ShoupMul::new(42, p);
        let s2 = ShoupMul::from_parts(s.value(), s.companion(), s.modulus());
        assert_eq!(s, s2);
    }

    #[test]
    #[should_panic(expected = "reduced mod p")]
    fn rejects_unreduced_multiplicand() {
        ShoupMul::new(11, 11);
    }
}
