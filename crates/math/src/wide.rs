//! Portable 64×64→128-bit multiplication helpers.
//!
//! On the GPU the paper targets, a 64-bit multiply producing a 128-bit result
//! is four 32-bit `mad` instructions; on x86-64/aarch64 it is a single `mul`.
//! We route everything through `u128` and let the compiler pick.

/// Full 64×64→128-bit product, returned as `(high, low)` 64-bit halves.
///
/// # Example
///
/// ```
/// let (hi, lo) = ntt_math::wide::mul_wide(u64::MAX, u64::MAX);
/// assert_eq!((hi, lo), (u64::MAX - 1, 1));
/// ```
#[inline(always)]
pub fn mul_wide(a: u64, b: u64) -> (u64, u64) {
    let prod = u128::from(a) * u128::from(b);
    ((prod >> 64) as u64, prod as u64)
}

/// High 64 bits of the 128-bit product `a * b`.
#[inline(always)]
pub fn mul_hi(a: u64, b: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) >> 64) as u64
}

/// Low 64 bits of the product `a * b` (wrapping multiplication).
#[inline(always)]
pub fn mul_lo(a: u64, b: u64) -> u64 {
    a.wrapping_mul(b)
}

/// `(a * b) >> shift` for `shift` in `64..=127`, without losing precision.
///
/// # Panics
///
/// Panics if `shift` is not in `64..=127`.
#[inline]
pub fn mul_shift(a: u64, b: u64, shift: u32) -> u64 {
    assert!((64..=127).contains(&shift), "shift must be in 64..=127");
    ((u128::from(a) * u128::from(b)) >> shift) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_wide_small() {
        assert_eq!(mul_wide(3, 4), (0, 12));
        assert_eq!(mul_wide(1 << 63, 2), (1, 0));
    }

    #[test]
    fn mul_hi_matches_u128() {
        let a = 0xDEAD_BEEF_CAFE_BABE;
        let b = 0x1234_5678_9ABC_DEF0;
        assert_eq!(mul_hi(a, b), ((a as u128 * b as u128) >> 64) as u64);
    }

    #[test]
    fn mul_lo_wraps() {
        assert_eq!(mul_lo(u64::MAX, 2), u64::MAX - 1);
    }

    #[test]
    fn mul_shift_is_exact() {
        let a = 0xFFFF_FFFF_0000_0001;
        let b = 0x8000_0000_0000_0000;
        for shift in [64u32, 65, 100, 127] {
            let expect = ((a as u128 * b as u128) >> shift) as u64;
            assert_eq!(mul_shift(a, b, shift), expect);
        }
    }

    #[test]
    #[should_panic(expected = "shift must be in 64..=127")]
    fn mul_shift_rejects_small_shift() {
        mul_shift(1, 1, 63);
    }
}
