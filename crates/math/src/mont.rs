//! Montgomery-form modular arithmetic for odd 64-bit moduli.
//!
//! Montgomery multiplication is the third classic division-free reduction
//! (after Barrett and Shoup). The paper's NTT kernels use Shoup because the
//! twiddle operand is fixed; Montgomery is included here as an ablation
//! baseline for the `modmul` criterion bench — it needs *no* per-twiddle
//! companion but pays a domain conversion at the boundaries.

/// Montgomery context for an odd modulus `p < 2^63` with `R = 2^64`.
///
/// # Example
///
/// ```
/// use ntt_math::mont::Montgomery;
/// let p = (1u64 << 61) - 1;
/// let m = Montgomery::new(p);
/// let a = m.to_mont(123456789);
/// let b = m.to_mont(987654321);
/// let ab = m.from_mont(m.mul(a, b));
/// assert_eq!(ab, ntt_math::mul_mod(123456789, 987654321, p));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Montgomery {
    p: u64,
    /// `-p^{-1} mod 2^64`.
    neg_p_inv: u64,
    /// `R^2 mod p` with `R = 2^64`, used for the to-Montgomery conversion.
    r2: u64,
}

impl Montgomery {
    /// Build a context for odd modulus `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is even, `p < 3`, or `p >= 2^63`.
    pub fn new(p: u64) -> Self {
        assert!(p % 2 == 1, "Montgomery requires an odd modulus");
        assert!((3..(1 << 63)).contains(&p), "modulus out of range");
        // Newton iteration for the inverse of p mod 2^64: five steps double
        // the bit precision each time starting from 5 correct bits.
        let mut inv: u64 = p; // p ≡ p^{-1} mod 8 for odd p (3 bits correct)
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(p.wrapping_mul(inv)));
        }
        debug_assert_eq!(p.wrapping_mul(inv), 1);
        let r2 = {
            // 2^128 mod p, via repeated doubling of 2^64 mod p.
            let r = (u128::from(u64::MAX) + 1) % u128::from(p); // 2^64 mod p
            (r * r % u128::from(p)) as u64
        };
        Self {
            p,
            neg_p_inv: inv.wrapping_neg(),
            r2,
        }
    }

    /// The modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// Montgomery reduction: for `t < p * 2^64`, returns `t * 2^-64 mod p`.
    #[inline(always)]
    pub fn redc(&self, t: u128) -> u64 {
        let m = (t as u64).wrapping_mul(self.neg_p_inv);
        let t2 = (t + u128::from(m) * u128::from(self.p)) >> 64;
        let r = t2 as u64;
        if r >= self.p {
            r - self.p
        } else {
            r
        }
    }

    /// Convert into Montgomery form: `a -> a * 2^64 mod p`.
    #[inline]
    pub fn to_mont(&self, a: u64) -> u64 {
        debug_assert!(a < self.p);
        self.redc(u128::from(a) * u128::from(self.r2))
    }

    /// Convert out of Montgomery form: `a * 2^64 mod p -> a`.
    #[inline]
    pub fn from_mont(&self, a: u64) -> u64 {
        self.redc(u128::from(a))
    }

    /// Product of two Montgomery-form operands, result in Montgomery form.
    #[inline(always)]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        self.redc(u128::from(a) * u128::from(b))
    }

    /// Product of two **ordinary-form** operands, canonical ordinary-form
    /// result: `a·b mod p` via two reductions (`redc(redc(a·b) · R²)`),
    /// with no per-element domain conversion of the inputs. This is the
    /// Montgomery pointwise kernel the plan-time strategy selection
    /// ([`crate::shoup`]-free) weighs against Barrett: 4 wide multiplies
    /// against Barrett's 5.
    ///
    /// Operands may be in the lazy domain `[0, 2p)` as long as `p < 2^62`
    /// (so `a·b < 4p² < p·2^64` stays inside the REDC precondition).
    #[inline(always)]
    pub fn mul_plain(&self, a: u64, b: u64) -> u64 {
        debug_assert!(
            u128::from(a) * u128::from(b) < u128::from(self.p) << 64,
            "operands exceed the REDC precondition"
        );
        let t = self.redc(u128::from(a) * u128::from(b));
        self.redc(u128::from(t) * u128::from(self.r2))
    }

    /// `base^exp mod p` with `base` in ordinary form; returns ordinary form.
    pub fn pow(&self, base: u64, mut exp: u64) -> u64 {
        let mut b = self.to_mont(base % self.p);
        let mut acc = self.to_mont(1);
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, b);
            }
            b = self.mul(b, b);
            exp >>= 1;
        }
        self.from_mont(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modops;

    #[test]
    fn roundtrip_conversion() {
        let p = (1u64 << 59) + 21;
        let m = Montgomery::new(p);
        for a in [0u64, 1, 2, p / 2, p - 1] {
            assert_eq!(m.from_mont(m.to_mont(a)), a);
        }
    }

    #[test]
    fn mul_matches_native() {
        for p in [97u64, 65537, (1 << 61) - 1, (1 << 62) - 57] {
            let m = Montgomery::new(p);
            let xs = [0u64, 1, 2, p / 3, p - 1];
            for &a in &xs {
                for &b in &xs {
                    let got = m.from_mont(m.mul(m.to_mont(a), m.to_mont(b)));
                    assert_eq!(got, modops::mul_mod(a, b, p), "a={a} b={b} p={p}");
                }
            }
        }
    }

    #[test]
    fn pow_matches_modops() {
        let p = (1u64 << 61) - 1;
        let m = Montgomery::new(p);
        assert_eq!(m.pow(3, 100_000), modops::pow_mod(3, 100_000, p));
    }

    #[test]
    fn mul_plain_matches_native_including_lazy_operands() {
        for p in [(1u64 << 59) + 21, (1u64 << 61) - 1, (1u64 << 62) - 57] {
            let m = Montgomery::new(p);
            // Ordinary and lazy-domain ([0, 2p)) operands both reduce
            // to the canonical product.
            let samples = [0u64, 1, p / 3, p - 1, p, p + 5, 2 * p - 1];
            for &a in &samples {
                for &b in &samples {
                    assert_eq!(
                        m.mul_plain(a, b),
                        modops::mul_mod(a % p, b % p, p),
                        "a={a} b={b} p={p}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn rejects_even_modulus() {
        Montgomery::new(1 << 40);
    }
}
