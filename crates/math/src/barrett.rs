//! Barrett reduction for a fixed 64-bit modulus.
//!
//! Barrett reduction (Barrett 1986, the paper's reference \[4\]) replaces a
//! division by `p` with two multiplications by a precomputed reciprocal
//! `mu = floor(2^128 / p)` (stored as a 128-bit value split in two words).
//!
//! We use the standard two-word variant that handles any 128-bit input
//! `x < p^2`, which covers every product of reduced operands.

/// A Barrett reducer for a fixed modulus `p < 2^63`.
///
/// # Example
///
/// ```
/// use ntt_math::Barrett;
/// let p = 0x0FFF_FFFF_0000_0001u64; // any modulus < 2^63
/// let b = Barrett::new(p);
/// assert_eq!(b.mul(p - 1, p - 1), ntt_math::mul_mod(p - 1, p - 1, p));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Barrett {
    p: u64,
    /// floor(2^128 / p), high 64 bits.
    mu_hi: u64,
    /// floor(2^128 / p), low 64 bits.
    mu_lo: u64,
}

impl Barrett {
    /// Create a reducer for modulus `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p < 2` or `p >= 2^63`.
    pub fn new(p: u64) -> Self {
        assert!(p >= 2, "modulus must be at least 2");
        assert!(p < (1 << 63), "modulus must be below 2^63");
        // floor(2^128 / p) computed with 128-bit arithmetic:
        // 2^128 / p = ((2^128 - 1) / p) when p is not a power of two; adjust
        // for the exact quotient by checking the remainder.
        let max = u128::MAX; // 2^128 - 1
        let q = max / u128::from(p);
        let r = max % u128::from(p);
        let mu = if r == u128::from(p) - 1 { q + 1 } else { q };
        Self {
            p,
            mu_hi: (mu >> 64) as u64,
            mu_lo: mu as u64,
        }
    }

    /// The modulus this reducer was built for.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// Reduce a 128-bit value `x < p^2` to `x mod p`.
    #[inline]
    pub fn reduce_u128(&self, x: u128) -> u64 {
        // q = floor(x * mu / 2^128), computed from the three cross products
        // that can influence the high 128 bits.
        let x_hi = (x >> 64) as u64;
        let x_lo = x as u64;
        // x * mu = (x_hi*2^64 + x_lo) * (mu_hi*2^64 + mu_lo)
        // We need bits 128.. of the 256-bit product.
        let lo_lo = u128::from(x_lo) * u128::from(self.mu_lo);
        let lo_hi = u128::from(x_lo) * u128::from(self.mu_hi);
        let hi_lo = u128::from(x_hi) * u128::from(self.mu_lo);
        let hi_hi = u128::from(x_hi) * u128::from(self.mu_hi);
        let mid = (lo_lo >> 64) + (lo_hi & 0xFFFF_FFFF_FFFF_FFFF) + (hi_lo & 0xFFFF_FFFF_FFFF_FFFF);
        let q = hi_hi + (lo_hi >> 64) + (hi_lo >> 64) + (mid >> 64);
        // r = x - q*p, guaranteed < 2p; one conditional subtraction finishes.
        let r = x.wrapping_sub(q.wrapping_mul(u128::from(self.p))) as u64;
        if r >= self.p {
            r - self.p
        } else {
            r
        }
    }

    /// Reduce a 128-bit value to the **lazy** range `[0, 2p)`, skipping the
    /// final conditional subtraction of [`Barrett::reduce_u128`].
    ///
    /// The quotient estimate `q = floor(x·mu / 2^128)` undershoots
    /// `floor(x/p)` by at most 1 as long as `x < 2^126` (the estimate error
    /// is `x/2^128 + 1 < 5/4`), so the remainder stays below `2p`. This is
    /// the pointwise-stage analogue of the Harvey lazy butterfly: products
    /// of `[0, 2p)` operands for `p < 2^62` satisfy `x < 4p^2 < 2^126`.
    #[inline]
    pub fn reduce_u128_lazy(&self, x: u128) -> u64 {
        debug_assert!(x < 1u128 << 126, "lazy Barrett requires x < 2^126");
        let x_hi = (x >> 64) as u64;
        let x_lo = x as u64;
        let lo_lo = u128::from(x_lo) * u128::from(self.mu_lo);
        let lo_hi = u128::from(x_lo) * u128::from(self.mu_hi);
        let hi_lo = u128::from(x_hi) * u128::from(self.mu_lo);
        let hi_hi = u128::from(x_hi) * u128::from(self.mu_hi);
        let mid = (lo_lo >> 64) + (lo_hi & 0xFFFF_FFFF_FFFF_FFFF) + (hi_lo & 0xFFFF_FFFF_FFFF_FFFF);
        let q = hi_hi + (lo_hi >> 64) + (hi_lo >> 64) + (mid >> 64);
        x.wrapping_sub(q.wrapping_mul(u128::from(self.p))) as u64
    }

    /// `(a * b) mod p` for `a, b < p`.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.p && b < self.p);
        self.reduce_u128(u128::from(a) * u128::from(b))
    }

    /// Lazy product: `(a * b) mod p` in `[0, 2p)` for operands already in
    /// the lazy domain `[0, 2p)`. Requires `p < 2^62` (see
    /// [`Barrett::reduce_u128_lazy`]); no division, no final correction.
    #[inline]
    pub fn mul_lazy(&self, a: u64, b: u64) -> u64 {
        debug_assert!(self.p < (1 << 62), "lazy product requires p < 2^62");
        debug_assert!(a < 2 * self.p && b < 2 * self.p);
        self.reduce_u128_lazy(u128::from(a) * u128::from(b))
    }

    /// Reduce a single word `a` (any `u64`) to `a mod p`.
    #[inline]
    pub fn reduce(&self, a: u64) -> u64 {
        self.reduce_u128(u128::from(a))
    }

    /// `base^exp mod p` using Barrett multiplication throughout.
    pub fn pow(&self, base: u64, mut exp: u64) -> u64 {
        let mut base = self.reduce(base);
        let mut acc = 1u64 % self.p;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        acc
    }
}

impl std::fmt::Display for Barrett {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Barrett(p = {})", self.p)
    }
}

/// Convenience free function: one-shot Barrett multiply (builds the reducer).
///
/// Prefer constructing a [`Barrett`] once when the modulus is reused.
pub fn barrett_mul(a: u64, b: u64, p: u64) -> u64 {
    Barrett::new(p).mul(a % p, b % p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modops;

    #[test]
    fn matches_native_small() {
        let p = 97;
        let b = Barrett::new(p);
        for x in 0..p {
            for y in 0..p {
                assert_eq!(b.mul(x, y), modops::mul_mod(x, y, p), "{x}*{y} mod {p}");
            }
        }
    }

    #[test]
    fn matches_native_large_modulus() {
        // 59-to-62-bit moduli as used for HE prime chains.
        for p in [
            (1u64 << 59) + 21,
            (1u64 << 60) - 93,
            (1u64 << 62) - 57,
            0x7FFF_FFFF_FFFF_FFE7,
        ] {
            let b = Barrett::new(p);
            let samples = [0u64, 1, 2, p / 2, p - 2, p - 1, 0x1234_5678_9ABC_DEF0 % p];
            for &x in &samples {
                for &y in &samples {
                    assert_eq!(b.mul(x, y), modops::mul_mod(x, y, p));
                }
            }
        }
    }

    #[test]
    fn reduce_u128_handles_full_range() {
        let p = (1u64 << 61) - 1;
        let b = Barrett::new(p);
        let x = u128::from(p - 1) * u128::from(p - 1);
        assert_eq!(b.reduce_u128(x), (x % u128::from(p)) as u64);
        assert_eq!(b.reduce_u128(0), 0);
        assert_eq!(b.reduce_u128(u128::from(p)), 0);
    }

    #[test]
    fn lazy_product_stays_below_2p_and_is_congruent() {
        for p in [(1u64 << 59) + 21, (1u64 << 61) - 1, (1u64 << 62) - 57] {
            let b = Barrett::new(p);
            let samples = [0u64, 1, p - 1, p, p + 3, 2 * p - 1];
            for &x in &samples {
                for &y in &samples {
                    let r = b.mul_lazy(x, y);
                    assert!(r < 2 * p, "lazy result {r} out of [0, 2p) for p={p}");
                    assert_eq!(
                        r % p,
                        (u128::from(x) * u128::from(y) % u128::from(p)) as u64
                    );
                }
            }
        }
    }

    #[test]
    fn pow_matches_modops() {
        let p = (1u64 << 59) + 21; // not necessarily prime; pow is still well-defined
        let b = Barrett::new(p);
        assert_eq!(b.pow(3, 1000), modops::pow_mod(3, 1000, p));
    }

    #[test]
    #[should_panic(expected = "below 2^63")]
    fn rejects_oversized_modulus() {
        Barrett::new(1 << 63);
    }
}
