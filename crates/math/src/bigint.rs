//! A minimal unsigned big integer.
//!
//! Ciphertext moduli in bootstrappable HE are products of dozens of 60-bit
//! primes (`Q ≈ 2^1200` and beyond) — too large for `u128`. This module
//! implements just enough multi-precision arithmetic for CRT reconstruction
//! and `log2 Q` accounting: schoolbook add/sub/compare, multiplication and
//! division by a single 64-bit word, and full multiplication (used by
//! tests). Little-endian base-2^64 limbs, no allocation tricks.

use std::cmp::Ordering;

/// An arbitrary-precision unsigned integer (little-endian 64-bit limbs).
///
/// # Example
///
/// ```
/// use ntt_math::BigUint;
/// let q = BigUint::product(&[(1u64 << 60) - 93, (1u64 << 60) - 173]);
/// assert_eq!(q.bits(), 120);
/// assert_eq!(&q % ((1u64 << 60) - 93), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Invariant: no trailing zero limbs (canonical form); empty == 0.
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        Self { limbs: vec![1] }
    }

    /// Construct from a single word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            Self { limbs: vec![v] }
        }
    }

    /// Construct from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let mut s = Self {
            limbs: vec![v as u64, (v >> 64) as u64],
        };
        s.normalize();
        s
    }

    /// Product of a slice of words — the RNS modulus `Q = Π p_i`.
    pub fn product(factors: &[u64]) -> Self {
        let mut acc = Self::one();
        for &f in factors {
            acc = acc.mul_u64(f);
        }
        acc
    }

    /// `true` iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (0 for the value 0). This is `ceil(log2(x+1))`,
    /// i.e. `bits(Q)` is the paper's `log Q` rounded up for powers of two.
    pub fn bits(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u32 - 1) * 64 + (64 - top.leading_zeros()),
        }
    }

    /// Approximate `log2` as `f64` (uses the top 128 bits).
    pub fn log2(&self) -> f64 {
        match self.limbs.len() {
            0 => f64::NEG_INFINITY,
            1 => (self.limbs[0] as f64).log2(),
            n => {
                let top = (u128::from(self.limbs[n - 1]) << 64) | u128::from(self.limbs[n - 2]);
                (top as f64).log2() + 64.0 * (n as f64 - 2.0)
            }
        }
    }

    /// Value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Value as `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(u128::from(self.limbs[0])),
            2 => Some((u128::from(self.limbs[1]) << 64) | u128::from(self.limbs[0])),
            _ => None,
        }
    }

    /// Centered lift: interpret `self` (a residue mod `m`) as a signed value
    /// in `(-m/2, m/2]`, returning it as `i128` if it fits.
    ///
    /// Used to read small signed coefficients back from CRT reconstruction.
    pub fn to_i128_centered(&self, m: &BigUint) -> Option<i128> {
        debug_assert!(self < m, "residue must be reduced mod m");
        let double = self.add(self);
        if &double > m {
            // negative: self - m
            let mag = m.sub(self);
            mag.to_u128().and_then(|v| {
                if v <= i128::MAX as u128 {
                    Some(-(v as i128))
                } else {
                    None
                }
            })
        } else {
            self.to_u128().and_then(|v| {
                if v <= i128::MAX as u128 {
                    Some(v as i128)
                } else {
                    None
                }
            })
        }
    }

    /// Sum `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (the type is unsigned).
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint subtraction would underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Product with a single word.
    pub fn mul_u64(&self, f: u64) -> BigUint {
        if f == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u64;
        for &l in &self.limbs {
            let prod = u128::from(l) * u128::from(f) + u128::from(carry);
            out.push(prod as u64);
            carry = (prod >> 64) as u64;
        }
        if carry > 0 {
            out.push(carry);
        }
        BigUint { limbs: out }
    }

    /// Full product `self * other` (schoolbook; setup/test use only).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur =
                    u128::from(out[i + j]) + u128::from(a) * u128::from(b) + u128::from(carry);
                out[i + j] = cur as u64;
                carry = (cur >> 64) as u64;
            }
            out[i + other.limbs.len()] = carry;
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Quotient and remainder by a single word divisor.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_rem_u64(&self, d: u64) -> (BigUint, u64) {
        assert!(d != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u64;
        for i in (0..self.limbs.len()).rev() {
            let cur = (u128::from(rem) << 64) | u128::from(self.limbs[i]);
            out[i] = (cur / u128::from(d)) as u64;
            rem = (cur % u128::from(d)) as u64;
        }
        let mut q = BigUint { limbs: out };
        q.normalize();
        (q, rem)
    }

    /// Remainder mod another big integer, by repeated conditional
    /// subtraction after aligning magnitudes (shift-and-subtract division).
    pub fn rem(&self, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "division by zero");
        if self < m {
            return self.clone();
        }
        let mut r = self.clone();
        let shift = self.bits() - m.bits();
        for s in (0..=shift).rev() {
            let shifted = m.shl(s);
            if r >= shifted {
                r = r.sub(&shifted);
            }
        }
        debug_assert!(&r < m);
        r
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: u32) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let word_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; word_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        Self::from_u128(v)
    }
}

impl std::ops::Rem<u64> for &BigUint {
    type Output = u64;

    fn rem(self, d: u64) -> u64 {
        self.div_rem_u64(d).1
    }
}

impl std::fmt::Display for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Peel 19 decimal digits at a time.
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            digits.push(r);
            cur = q;
        }
        write!(f, "{}", digits.pop().expect("nonzero has digits"))?;
        for d in digits.iter().rev() {
            write!(f, "{d:019}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_bits() {
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert_eq!(BigUint::from_u64(255).bits(), 8);
        assert_eq!(BigUint::from_u128(1u128 << 100).bits(), 101);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = BigUint::from_u128(u128::MAX);
        let b = BigUint::from_u64(u64::MAX);
        let s = a.add(&b);
        assert_eq!(s.sub(&b), a);
        assert_eq!(s.sub(&a), b);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = BigUint::from_u128(u128::MAX);
        let one = BigUint::one();
        let s = a.add(&one);
        assert_eq!(s.bits(), 129);
        assert_eq!(s.sub(&one).to_u128(), Some(u128::MAX));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        BigUint::one().sub(&BigUint::from_u64(2));
    }

    #[test]
    fn mul_u64_matches_u128() {
        let a = BigUint::from_u64(0xFFFF_FFFF_FFFF_FFFF);
        let prod = a.mul_u64(0xFFFF_FFFF_FFFF_FFFF);
        assert_eq!(
            prod.to_u128(),
            Some(u128::from(u64::MAX) * u128::from(u64::MAX))
        );
    }

    #[test]
    fn full_mul_matches_mul_u64_chain() {
        let a = BigUint::product(&[u64::MAX, u64::MAX - 1, 12345]);
        let b = BigUint::from_u64(999_999_937);
        assert_eq!(a.mul(&b), a.mul_u64(999_999_937));
    }

    #[test]
    fn div_rem_roundtrip() {
        let q0 = BigUint::product(&[(1 << 60) - 93, (1 << 60) - 173, (1 << 59) + 21]);
        let d = (1u64 << 60) - 93;
        let (q, r) = q0.div_rem_u64(d);
        assert_eq!(r, 0);
        assert_eq!(q.mul_u64(d), q0);
        let (_, r2) = q0.add(&BigUint::from_u64(5)).div_rem_u64(d);
        assert_eq!(r2, 5);
    }

    #[test]
    fn rem_big_matches_div_rem_for_word_modulus() {
        let a = BigUint::product(&[0xDEAD_BEEF, 0xCAFE_BABE, 0x1234_5678, 0x9ABC_DEF1]);
        let m = 999_999_937u64;
        assert_eq!(
            a.rem(&BigUint::from_u64(m)).to_u64().unwrap(),
            a.div_rem_u64(m).1
        );
    }

    #[test]
    fn shl_matches_mul_by_power_of_two() {
        let a = BigUint::from_u64(0b1011);
        assert_eq!(a.shl(1), a.mul_u64(2));
        assert_eq!(a.shl(64), a.mul(&BigUint::from_u128(1u128 << 64)));
        assert_eq!(a.shl(100).bits(), a.bits() + 100);
    }

    #[test]
    fn ordering() {
        let a = BigUint::from_u128(1u128 << 90);
        let b = BigUint::from_u64(u64::MAX);
        assert!(a > b);
        assert!(b < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn display_decimal() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(BigUint::from_u64(12345).to_string(), "12345");
        let big = BigUint::from_u128(123_456_789_012_345_678_901_234_567_890u128);
        assert_eq!(big.to_string(), "123456789012345678901234567890");
    }

    #[test]
    fn centered_lift() {
        let m = BigUint::from_u64(101);
        assert_eq!(BigUint::from_u64(5).to_i128_centered(&m), Some(5));
        assert_eq!(BigUint::from_u64(96).to_i128_centered(&m), Some(-5));
        assert_eq!(BigUint::from_u64(50).to_i128_centered(&m), Some(50));
        assert_eq!(BigUint::from_u64(51).to_i128_centered(&m), Some(-50));
    }

    #[test]
    fn log2_tracks_bits() {
        let q = BigUint::product(&ntt_math_primes());
        let lg = q.log2();
        assert!((lg - (q.bits() as f64)).abs() < 1.0);
    }

    fn ntt_math_primes() -> Vec<u64> {
        crate::prime::ntt_primes(60, 1 << 15, 21)
    }
}
