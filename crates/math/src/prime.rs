//! Primality testing and NTT-friendly prime generation.
//!
//! HE schemes need chains of primes `p_i ≡ 1 (mod 2N)` so that the 2N-th
//! root of unity exists mod each `p_i` (enabling the merged negacyclic NTT).
//! The paper uses 60-bit primes (`2^59 < p < 2^60`) and, for the word-size
//! ablation, 30-bit primes.

use crate::modops::{mul_mod, pow_mod};

/// Deterministic Miller–Rabin for `u64`.
///
/// The witness set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}` is proven
/// sufficient for all `n < 3.3 * 10^24`, which covers `u64`.
///
/// # Example
///
/// ```
/// assert!(ntt_math::is_prime((1 << 61) - 1)); // Mersenne prime M61
/// assert!(!ntt_math::is_prime(1 << 61));
/// ```
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // n - 1 = d * 2^s with d odd
    let s = (n - 1).trailing_zeros();
    let d = (n - 1) >> s;
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// The largest prime `p ≡ 1 (mod modulus_step)` with exactly `bits` bits
/// (i.e. `2^(bits-1) <= p < 2^bits`), or `None` if none exists.
///
/// `modulus_step` is `2N` for an N-point negacyclic NTT.
///
/// # Panics
///
/// Panics if `bits` is not in `3..=62` (62 is the lazy-butterfly bound) or
/// if `modulus_step` is zero or not a power of two.
///
/// # Example
///
/// ```
/// let p = ntt_math::ntt_prime(60, 1 << 18).unwrap(); // N = 2^17
/// assert!(ntt_math::is_prime(p));
/// assert_eq!(p % (1 << 18), 1);
/// assert_eq!(64 - p.leading_zeros(), 60);
/// ```
pub fn ntt_prime(bits: u32, modulus_step: u64) -> Option<u64> {
    assert!((3..=62).contains(&bits), "bits must be in 3..=62");
    assert!(
        modulus_step.is_power_of_two(),
        "modulus step must be a power of two (2N)"
    );
    let hi = 1u64 << bits;
    let lo = 1u64 << (bits - 1);
    // Start at the largest candidate ≡ 1 (mod step) below 2^bits.
    let mut cand = (hi - 1) / modulus_step * modulus_step + 1;
    while cand >= lo.max(modulus_step + 1) {
        if is_prime(cand) {
            return Some(cand);
        }
        cand -= modulus_step;
    }
    None
}

/// Generate `count` distinct NTT-friendly primes of the given bit size,
/// descending from the top of the range.
///
/// This is the RNS prime chain: `np` coprimes whose product bounds the
/// ciphertext modulus `Q`.
///
/// # Panics
///
/// Panics (via [`ntt_prime`] preconditions) on invalid `bits`/`step`, or if
/// fewer than `count` such primes exist in the bit range.
///
/// # Example
///
/// ```
/// let primes = ntt_math::ntt_primes(60, 1 << 15, 21); // N = 2^14, np = 21
/// assert_eq!(primes.len(), 21);
/// for w in primes.windows(2) {
///     assert!(w[0] > w[1], "descending and distinct");
/// }
/// ```
pub fn ntt_primes(bits: u32, modulus_step: u64, count: usize) -> Vec<u64> {
    assert!((3..=62).contains(&bits), "bits must be in 3..=62");
    assert!(
        modulus_step.is_power_of_two(),
        "modulus step must be a power of two (2N)"
    );
    let mut primes = Vec::with_capacity(count);
    let hi = 1u64 << bits;
    let lo = 1u64 << (bits - 1);
    let mut cand = (hi - 1) / modulus_step * modulus_step + 1;
    while primes.len() < count && cand >= lo.max(modulus_step + 1) {
        if is_prime(cand) {
            primes.push(cand);
        }
        cand -= modulus_step;
    }
    assert_eq!(
        primes.len(),
        count,
        "not enough {bits}-bit primes ≡ 1 mod {modulus_step}"
    );
    primes
}

/// Euler's totient-style factorization helper: the distinct prime factors
/// of `n` (trial division; `n` here is always `p - 1` with smooth structure,
/// so this is fast enough for setup-time use).
pub fn distinct_prime_factors(mut n: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut d = 2u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += if d == 2 { 1 } else { 2 };
    }
    if n > 1 {
        out.push(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_classified() {
        let primes = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 65537];
        for &p in &primes {
            assert!(is_prime(p), "{p} is prime");
        }
        let composites = [0u64, 1, 4, 6, 9, 15, 21, 25, 91, 561, 1105, 6601];
        for &c in &composites {
            assert!(!is_prime(c), "{c} is composite (or <2)");
        }
    }

    #[test]
    fn strong_pseudoprimes_rejected() {
        // Known strong pseudoprimes to small bases.
        for &c in &[3215031751u64, 3825123056546413051] {
            assert!(!is_prime(c), "{c} must be rejected");
        }
    }

    #[test]
    fn large_known_primes() {
        assert!(is_prime((1 << 61) - 1));
        assert!(is_prime(0xFFFF_FFFF_0000_0001)); // Solinas prime 2^64-2^32+1
        assert!(!is_prime((1 << 61) - 3));
    }

    #[test]
    fn ntt_prime_has_required_structure() {
        for log_n in [10u32, 14, 17] {
            let step = 1u64 << (log_n + 1);
            let p = ntt_prime(60, step).unwrap();
            assert!(is_prime(p));
            assert_eq!(p % step, 1);
            assert_eq!(64 - p.leading_zeros(), 60);
        }
    }

    #[test]
    fn prime_chain_is_distinct_and_structured() {
        let step = 1u64 << 15;
        let chain = ntt_primes(59, step, 10);
        let mut seen = std::collections::HashSet::new();
        for &p in &chain {
            assert!(is_prime(p));
            assert_eq!(p % step, 1);
            assert!(seen.insert(p), "duplicate prime {p}");
        }
    }

    #[test]
    fn thirty_bit_primes_exist() {
        // The paper's word-size ablation needs 30-bit primes for N = 2^17.
        let chain = ntt_primes(30, 1 << 18, 4);
        assert_eq!(chain.len(), 4);
        for &p in &chain {
            assert!(((1 << 29)..(1 << 30)).contains(&p));
        }
    }

    #[test]
    fn factorization_helper() {
        assert_eq!(distinct_prime_factors(1), Vec::<u64>::new());
        assert_eq!(distinct_prime_factors(2 * 2 * 3 * 7), vec![2, 3, 7]);
        assert_eq!(distinct_prime_factors(65537), vec![65537]);
    }
}
