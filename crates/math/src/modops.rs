//! Plain modular operations with "native" reduction.
//!
//! These use Rust's `u128 %` operator, the software analogue of the native
//! modulo instruction sequence the paper measures (68 machine instructions,
//! ~500 cycles on the Titan V). They are the correctness oracle for the
//! optimized reducers in [`crate::barrett`], [`crate::shoup`] and
//! [`crate::mont`].
//!
//! All functions require operands already reduced mod `p` unless stated
//! otherwise, and `p >= 2`.

/// `(a + b) mod p`.
///
/// Both operands must be `< p`; `p` may be up to `2^63` so the sum cannot
/// overflow after the conditional subtraction.
///
/// # Example
///
/// ```
/// assert_eq!(ntt_math::add_mod(5, 6, 7), 4);
/// ```
#[inline(always)]
pub fn add_mod(a: u64, b: u64, p: u64) -> u64 {
    debug_assert!(a < p && b < p);
    let s = a + b;
    if s >= p {
        s - p
    } else {
        s
    }
}

/// `(a - b) mod p` for `a, b < p`.
#[inline(always)]
pub fn sub_mod(a: u64, b: u64, p: u64) -> u64 {
    debug_assert!(a < p && b < p);
    if a >= b {
        a - b
    } else {
        a + p - b
    }
}

/// `(-a) mod p` for `a < p`.
#[inline(always)]
pub fn neg_mod(a: u64, p: u64) -> u64 {
    debug_assert!(a < p);
    if a == 0 {
        0
    } else {
        p - a
    }
}

/// `(a * b) mod p` via a 128-bit product and native reduction.
///
/// This is the expensive baseline the paper's Figure 1 measures against
/// Shoup's multiplication.
#[inline(always)]
pub fn mul_mod(a: u64, b: u64, p: u64) -> u64 {
    debug_assert!(p >= 2);
    (u128::from(a) * u128::from(b) % u128::from(p)) as u64
}

/// `base^exp mod p` by square-and-multiply.
///
/// # Example
///
/// ```
/// // Fermat: a^(p-1) = 1 mod p for prime p.
/// assert_eq!(ntt_math::pow_mod(3, 16, 17), 1);
/// ```
pub fn pow_mod(base: u64, mut exp: u64, p: u64) -> u64 {
    debug_assert!(p >= 2);
    let mut base = base % p;
    let mut acc: u64 = 1 % p;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, p);
        }
        base = mul_mod(base, base, p);
        exp >>= 1;
    }
    acc
}

/// Modular inverse of `a` mod `p` for **prime** `p`, via Fermat's little
/// theorem. Returns `None` when `a ≡ 0 (mod p)`.
///
/// # Example
///
/// ```
/// let inv = ntt_math::inv_mod(3, 17).unwrap();
/// assert_eq!(3 * inv % 17, 1);
/// ```
pub fn inv_mod(a: u64, p: u64) -> Option<u64> {
    if a.is_multiple_of(p) {
        return None;
    }
    Some(pow_mod(a, p - 2, p))
}

/// Reduce an arbitrary `u64` into `[0, p)`.
#[inline(always)]
pub fn reduce(a: u64, p: u64) -> u64 {
    a % p
}

/// Centered remainder: maps `a mod p` to the representative in
/// `(-p/2, p/2]` returned as `i64`.
///
/// Used when reading small signed values (noise, plaintext coefficients)
/// back out of residue form.
///
/// # Panics
///
/// Panics if `p >= 2^63` (the centered value would not fit an `i64`).
#[inline]
pub fn center(a: u64, p: u64) -> i64 {
    assert!(p < (1u64 << 63), "modulus too large for centered lift");
    let a = a % p;
    if a > p / 2 {
        -((p - a) as i64)
    } else {
        a as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: u64 = (1 << 59) - 55; // any prime-ish modulus shape; exactness checked below

    #[test]
    fn add_sub_roundtrip() {
        let p = 97;
        for a in 0..p {
            for b in 0..p {
                let s = add_mod(a, b, p);
                assert_eq!(sub_mod(s, b, p), a);
            }
        }
    }

    #[test]
    fn neg_is_additive_inverse() {
        let p = 101;
        for a in 0..p {
            assert_eq!(add_mod(a, neg_mod(a, p), p), 0);
        }
    }

    #[test]
    fn mul_matches_naive() {
        let p = 1_000_003;
        for a in (0..p).step_by(7919) {
            for b in (0..p).step_by(104729) {
                assert_eq!(mul_mod(a, b, p), a * b % p);
            }
        }
    }

    #[test]
    fn pow_mod_edge_cases() {
        assert_eq!(pow_mod(0, 0, 7), 1, "0^0 defined as 1");
        assert_eq!(pow_mod(5, 0, 7), 1);
        assert_eq!(pow_mod(5, 1, 7), 5);
        assert_eq!(pow_mod(2, 10, 1025), 1024);
    }

    #[test]
    fn inv_mod_works_for_prime() {
        let p = 65537;
        for a in [1u64, 2, 3, 12345, 65536] {
            let inv = inv_mod(a, p).unwrap();
            assert_eq!(mul_mod(a, inv, p), 1);
        }
        assert_eq!(inv_mod(0, p), None);
        assert_eq!(inv_mod(p, p), None, "multiples of p have no inverse");
    }

    #[test]
    fn center_maps_to_half_open_interval() {
        let p = 11;
        assert_eq!(center(0, p), 0);
        assert_eq!(center(5, p), 5);
        assert_eq!(center(6, p), -5);
        assert_eq!(center(10, p), -1);
    }

    #[test]
    fn large_modulus_mul() {
        let a = P - 1;
        assert_eq!(mul_mod(a, a, P), (a as u128 * a as u128 % P as u128) as u64);
    }
}
