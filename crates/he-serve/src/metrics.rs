//! Per-tenant accounting: latency histograms, batch counters and
//! transfer attribution.

use crate::request::TenantId;
use ntt_core::backend::FaultClass;
use std::collections::BTreeMap;

/// Number of log2 latency buckets: bucket `b` holds samples in
/// `[2^(b-1), 2^b)` nanoseconds (bucket 0 holds `0..2` ns), which spans
/// sub-microsecond dispatch up to ~9 years at the top.
const BUCKETS: usize = 48;

/// A fixed-size log2-bucketed latency histogram.
///
/// Quantiles locate the bucket where the cumulative count crosses the
/// rank, then **linearly interpolate** the rank's position between the
/// bucket bounds — reading the raw bucket upper bound is biased up to
/// 2× high (a tight cluster's median snaps to the next power of two),
/// while interpolation keeps the error well under a bucket width with
/// no sample storage. Results are clamped to the exact recorded
/// maximum, so `quantile(1.0) == max_ns()` and a single-sample
/// histogram reports that sample exactly.
///
/// # Example
///
/// ```
/// use he_serve::LatencyHistogram;
///
/// let mut h = LatencyHistogram::default();
/// for ns in [100, 200, 300, 400, 10_000] {
///     h.record(ns);
/// }
/// assert_eq!(h.count(), 5);
/// let p50 = h.p50();
/// assert!((256..=400).contains(&p50), "median interpolates inside the 100-400 cluster, got {p50}");
/// assert!(h.p99() >= 10_000, "tail sample dominates p99");
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    max_ns: u64,
    sum_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            count: 0,
            max_ns: 0,
            sum_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// Record one latency sample in nanoseconds.
    pub fn record(&mut self, ns: u64) {
        let bucket = (64 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.counts[bucket] += 1;
        self.count += 1;
        self.max_ns = self.max_ns.max(ns);
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean latency in nanoseconds (exact, not bucketed).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// The latency at quantile `q ∈ [0, 1]` (0 when empty). The rank's
    /// position *inside* the bucket where the cumulative count crosses
    /// it is linearly interpolated between the bucket's bounds
    /// (`[2^(b-1), 2^b)`); the result is clamped to the exact recorded
    /// maximum so `quantile(1.0) == max_ns()`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = if b == 0 { 0 } else { 1u64 << (b - 1) };
                let hi = (1u64 << b) - 1;
                let frac = (rank - seen) as f64 / c as f64;
                let est = lo as f64 + (hi - lo) as f64 * frac;
                return (est.round() as u64).min(self.max_ns);
            }
            seen += c;
        }
        self.max_ns
    }

    /// Median latency (bucket-interpolated).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile latency (bucket-interpolated).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }
}

/// Failure counters by [`FaultClass`] — every fault the serving loop
/// observed, including ones later absorbed by a retry or CPU fallback.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Transient (retryable) device faults.
    pub transient: u64,
    /// Fatal (wedged-executor) device faults.
    pub fatal: u64,
    /// Device out-of-memory faults.
    pub oom: u64,
    /// Deadline-classified failures.
    pub deadline: u64,
}

impl FaultCounts {
    /// Count one fault of the given class.
    pub(crate) fn record(&mut self, class: FaultClass) {
        match class {
            FaultClass::Transient => self.transient += 1,
            FaultClass::Fatal => self.fatal += 1,
            FaultClass::Oom => self.oom += 1,
            FaultClass::Deadline => self.deadline += 1,
        }
    }

    /// Total faults across every class.
    pub fn total(&self) -> u64 {
        self.transient + self.fatal + self.oom + self.deadline
    }
}

/// One tenant's view of the server's accounting.
#[derive(Debug, Clone, Default)]
pub struct TenantSnapshot {
    /// Jobs answered successfully.
    pub completed: u64,
    /// Jobs answered with [`Response::Failed`](crate::Response::Failed)
    /// (fault after all recovery, deadline miss, or cancellation).
    pub failed: u64,
    /// Jobs refused at the door (queue full).
    pub rejected: u64,
    /// End-to-end latency distribution of completed jobs.
    pub latency: LatencyHistogram,
    /// Host→device words attributed to this tenant's jobs (proportional
    /// share of each batch's transfer delta — approximate when several
    /// workers dispatch concurrently, since the context's transfer
    /// ledger is global).
    pub upload_words: u64,
    /// Device→host words attributed to this tenant's jobs (same
    /// proportional-share caveat).
    pub download_words: u64,
}

/// A point-in-time copy of the server's accounting.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Per-tenant accounting, keyed by tenant id.
    pub tenants: BTreeMap<u32, TenantSnapshot>,
    /// Dispatch groups executed.
    pub batches: u64,
    /// Jobs executed across all groups (`batched_jobs / batches` is the
    /// achieved batching factor).
    pub batched_jobs: u64,
    /// Retry attempts made after transient device faults.
    pub retries: u64,
    /// Device faults observed, by class (including faults later absorbed
    /// by a retry or the CPU fallback).
    pub faults: FaultCounts,
    /// Jobs whose batch was degraded to the host/CPU evaluator after the
    /// device path failed.
    pub degraded_jobs: u64,
    /// Jobs failed because their deadline expired before execution.
    pub deadline_misses: u64,
    /// Jobs failed because their ticket was cancelled.
    pub cancelled: u64,
    /// Evaluator-pool members quarantined and re-forked after a
    /// non-transient fault (see `HeContext::quarantined_count`).
    pub quarantined: u64,
    /// Host/CPU evaluators built by the degraded-dispatch fallback pool
    /// (its high-water mark; bounded by the worker count).
    pub fallback_evaluators: u64,
    /// Worker dispatches that panicked and were contained (the jobs'
    /// tickets observe a disconnect; the worker survives).
    pub worker_panics: u64,
}

impl MetricsSnapshot {
    /// Total jobs answered across tenants.
    pub fn completed(&self) -> u64 {
        self.tenants.values().map(|t| t.completed).sum()
    }

    /// Total jobs refused across tenants.
    pub fn rejected(&self) -> u64 {
        self.tenants.values().map(|t| t.rejected).sum()
    }

    /// Total jobs answered with a failure across tenants.
    pub fn failed(&self) -> u64 {
        self.tenants.values().map(|t| t.failed).sum()
    }

    /// One tenant's snapshot (empty default if never seen).
    pub fn tenant(&self, id: TenantId) -> TenantSnapshot {
        self.tenants.get(&id.0).cloned().unwrap_or_default()
    }

    /// Latency distribution across every tenant.
    pub fn merged_latency(&self) -> LatencyHistogram {
        let mut all = LatencyHistogram::default();
        for t in self.tenants.values() {
            all.merge(&t.latency);
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let mut h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(1_000); // bucket 10: [512, 1024)
        }
        h.record(1_000_000);
        assert_eq!(h.count(), 100);
        // Rank 50 of 99 in-bucket samples: 512 + 511 * 50/99 ≈ 770.
        assert_eq!(h.p50(), 770);
        assert_eq!(h.p99(), 1023, "rank 99 tops out its bucket");
        assert_eq!(h.quantile(1.0), 1_000_000, "clamped to exact max");
        assert_eq!(h.max_ns(), 1_000_000);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // The bug this pins down: every rank inside one bucket used to
        // read the same upper bound, so p50 of a tight cluster came
        // back as the next power of two (up to 2× high).
        let mut h = LatencyHistogram::default();
        for ns in [600, 700, 800, 1000] {
            h.record(ns); // all in bucket 10: [512, 1024)
        }
        // Ranks 1..4 spread across the bucket instead of all snapping
        // to 1023: 512 + 511 * r/4, the last clamped to the exact max.
        assert_eq!(h.quantile(0.25), 640);
        assert_eq!(h.quantile(0.50), 768);
        assert_eq!(h.quantile(0.75), 895);
        assert_eq!(h.quantile(1.0), 1000, "clamped to exact max");
        // Monotone in q.
        let qs: Vec<u64> = (0..=20).map(|i| h.quantile(i as f64 / 20.0)).collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
    }

    #[test]
    fn single_sample_quantile_is_exact() {
        let mut h = LatencyHistogram::default();
        h.record(100);
        assert_eq!(h.p50(), 100, "max clamp makes one sample exact");
        assert_eq!(h.p99(), 100);
        // Zero lands in bucket 0 without underflowing the bounds.
        let mut z = LatencyHistogram::default();
        z.record(0);
        assert_eq!(z.p50(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record(10);
        b.record(1 << 20);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_ns(), 1 << 20);
        assert!(a.mean_ns() > 0.0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }
}
