//! Packs many small ciphertext operations into single flat backend calls.
//!
//! Every dispatch group the server drains lands here, where `k` jobs of
//! one kind (and level) execute through **one** `forward_flat` /
//! `pointwise_flat` / `inverse_flat` call per pipeline stage instead of
//! `k`. On a staging backend that amortizes the per-call upload/download
//! round trip and per-kernel launch overhead across the whole group —
//! the request-level analogue of the residue-parallel batching the NTT
//! kernels already do within one polynomial.
//!
//! Results are bit-identical to per-job dispatch by construction: NTT
//! and pointwise rows are independent (row `r` is reduced mod prime
//! `r % level`, whatever the row count), and every other step is exact
//! host arithmetic. Each job's encryption randomness is seeded from
//! [`job_seed`], never from batch position, so the answer a tenant gets
//! does not depend on who else happened to share the batch.

use crate::request::TenantId;
use he_lite::{sampling, Ciphertext, HeContext, KeySet};
use ntt_core::backend::{BackendError, Evaluator};
use ntt_core::poly::{Representation, RnsPoly, RnsRing};

/// One encryption job: explicit randomness seed plus the values to
/// encode. The server derives the seed from the submitting tenant and
/// its per-tenant sequence number; tests pass seeds directly.
#[derive(Debug, Clone)]
pub struct EncryptJob {
    /// Seeds the ternary/error sampling for this job.
    pub seed: u64,
    /// Real values to encode and encrypt (≤ N of them).
    pub values: Vec<f64>,
}

/// Deterministic per-job randomness seed: a splitmix-style hash of the
/// server's seed domain, the tenant id and the tenant-local sequence
/// number. Two jobs never share a seed, and a job's seed — hence its
/// ciphertext bits — is independent of batch composition and worker
/// interleaving.
pub fn job_seed(domain: u64, tenant: TenantId, seq: u64) -> u64 {
    let mut z = domain ^ (u64::from(tenant.0) << 32) ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds an [`RnsPoly`] from packed flat rows (the inverse of reading
/// `poly.flat()` into a dispatch buffer).
fn poly_from_rows(ring: &RnsRing, level: usize, repr: Representation, rows: &[u64]) -> RnsPoly {
    let mut p = RnsPoly::zero_with_repr(ring, level, repr);
    p.flat_mut().copy_from_slice(rows);
    p
}

/// The batched executor: host-synced key material plus the flat-call
/// pipelines for each request kind.
///
/// Holds its own host copies of the public key halves and the secret
/// key's evaluation form, synced (and device-evicted) once at
/// construction, so batch packing never trips over device-dirty key
/// polynomials whatever backend the context runs.
pub struct Batcher {
    pk_b: RnsPoly,
    pk_a: RnsPoly,
    sk_eval: RnsPoly,
}

impl Batcher {
    /// Snapshot the key material needed by the pipelines.
    pub fn new(keys: &KeySet) -> Self {
        let host_copy = |p: &RnsPoly| {
            let mut c = p.clone();
            c.sync();
            c.evict_device();
            c
        };
        let (b, a) = keys.public.halves();
        Batcher {
            pk_b: host_copy(b),
            pk_a: host_copy(a),
            sk_eval: host_copy(keys.secret.eval_poly()),
        }
    }

    /// Encrypt `jobs.len()` value vectors in two backend calls total:
    /// one `forward_flat` over all `4k` sampled/encoded polynomials
    /// (`u, e0, e1, m` per job) and one `pointwise_flat` over all `2k`
    /// public-key products (`u·b`, `u·a` per job). The additions are
    /// exact host arithmetic.
    pub fn encrypt_batch(
        &self,
        ctx: &HeContext,
        ev: &mut Evaluator,
        jobs: &[EncryptJob],
    ) -> Vec<Ciphertext> {
        self.try_encrypt_batch(ctx, ev, jobs)
            .expect("backend without a fault surface never fails")
    }

    /// Fallible [`Batcher::encrypt_batch`]: a classified device fault
    /// comes back as `Err` instead of panicking. The job inputs are
    /// borrowed immutably, so the caller can simply call again (with a
    /// healthy or fallback evaluator) and get bit-identical results —
    /// per-job randomness comes from [`EncryptJob::seed`], never from
    /// attempt count.
    pub fn try_encrypt_batch(
        &self,
        ctx: &HeContext,
        ev: &mut Evaluator,
        jobs: &[EncryptJob],
    ) -> Result<Vec<Ciphertext>, BackendError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let ring = ctx.ring();
        let level = ctx.params().levels;
        let eta = ctx.params().error_eta;
        let stride = ring.degree() * level;
        let k = jobs.len();

        // Sample and encode per job, packing [u, e0, e1, m] rows.
        let mut fwd = Vec::with_capacity(4 * k * stride);
        let mut scales = Vec::with_capacity(k);
        for job in jobs {
            let mut rng = sampling::seeded_rng(job.seed);
            let u = sampling::ternary_poly(ring, &mut rng);
            let e0 = sampling::error_poly(ring, eta, &mut rng);
            let e1 = sampling::error_poly(ring, eta, &mut rng);
            let pt = ctx.encode(&job.values);
            scales.push(pt.scale());
            for p in [&u, &e0, &e1, pt.poly()] {
                fwd.extend_from_slice(p.flat());
            }
        }
        ev.try_forward_flat(level, &mut fwd)?;

        // One pointwise call for every key product: acc packs [u, u] per
        // job against rhs [b, a].
        let mut acc = Vec::with_capacity(2 * k * stride);
        let mut rhs = Vec::with_capacity(2 * k * stride);
        for j in 0..k {
            let u = &fwd[4 * j * stride..4 * j * stride + stride];
            acc.extend_from_slice(u);
            acc.extend_from_slice(u);
            rhs.extend_from_slice(self.pk_b.flat());
            rhs.extend_from_slice(self.pk_a.flat());
        }
        ev.try_pointwise_flat(level, &mut acc, &rhs)?;

        // c0 = u·b + e0 + m, c1 = u·a + e1 — evaluation form throughout.
        let eval = Representation::Evaluation;
        Ok((0..k)
            .map(|j| {
                let base = 4 * j * stride;
                let e0 = poly_from_rows(ring, level, eval, &fwd[base + stride..][..stride]);
                let e1 = poly_from_rows(ring, level, eval, &fwd[base + 2 * stride..][..stride]);
                let m = poly_from_rows(ring, level, eval, &fwd[base + 3 * stride..][..stride]);
                let mut c0 = poly_from_rows(ring, level, eval, &acc[2 * j * stride..][..stride]);
                c0.add_assign(&e0, ring);
                c0.add_assign(&m, ring);
                let mut c1 =
                    poly_from_rows(ring, level, eval, &acc[(2 * j + 1) * stride..][..stride]);
                c1.add_assign(&e1, ring);
                Ciphertext::from_parts(c0, c1, scales[j])
            })
            .collect())
    }

    /// Weighted plaintext multiply + rescale for a group of ciphertexts
    /// sharing one level, in four backend calls total: `forward_flat`
    /// over the `k` encoded weight polynomials, `pointwise_flat` +
    /// `inverse_flat` over the `2k` ciphertext halves, and a final
    /// `forward_flat` over the `2k` rescaled halves at the new level.
    ///
    /// # Panics
    ///
    /// Panics if the group mixes levels or any ciphertext is at level 1
    /// (nothing left to rescale into) — the server validates both at
    /// submit and groups by level.
    pub fn eval_batch(
        &self,
        ctx: &HeContext,
        ev: &mut Evaluator,
        jobs: Vec<(Ciphertext, Vec<f64>)>,
    ) -> Vec<Ciphertext> {
        self.try_eval_batch(ctx, ev, jobs)
            .expect("backend without a fault surface never fails")
    }

    /// Fallible [`Batcher::eval_batch`]. On `Err` only this call's local
    /// staging buffers were touched — the caller's ciphertexts are its
    /// own clones — so re-running the identical batch on another
    /// evaluator yields bit-identical results.
    pub fn try_eval_batch(
        &self,
        ctx: &HeContext,
        ev: &mut Evaluator,
        mut jobs: Vec<(Ciphertext, Vec<f64>)>,
    ) -> Result<Vec<Ciphertext>, BackendError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let ring = ctx.ring();
        let level = jobs[0].0.level();
        assert!(level >= 2, "no prime left to rescale into");
        let stride = ring.degree() * level;
        let k = jobs.len();

        // Encode + truncate every weight vector, one forward call.
        let mut weights = Vec::with_capacity(k * stride);
        let mut scales = Vec::with_capacity(k);
        for (ct, w) in &jobs {
            assert_eq!(ct.level(), level, "eval group mixes levels");
            let pt = ctx.encode(w);
            scales.push(ct.scale() * pt.scale());
            weights.extend_from_slice(pt.poly().truncated(level).flat());
        }
        ev.try_forward_flat(level, &mut weights)?;

        // Multiply both halves of every ciphertext by its weight poly,
        // then inverse-transform the lot for the rescale.
        let mut acc = Vec::with_capacity(2 * k * stride);
        let mut rhs = Vec::with_capacity(2 * k * stride);
        for (j, (ct, _)) in jobs.iter_mut().enumerate() {
            ct.try_sync()?;
            let (c0, c1) = ct.components();
            acc.extend_from_slice(c0.flat());
            acc.extend_from_slice(c1.flat());
            let w = &weights[j * stride..(j + 1) * stride];
            rhs.extend_from_slice(w);
            rhs.extend_from_slice(w);
        }
        ev.try_pointwise_flat(level, &mut acc, &rhs)?;
        ev.try_inverse_flat(level, &mut acc)?;

        // Exact host rescale per half, then one forward call at the new
        // level to return to evaluation form.
        let coef = Representation::Coefficient;
        let rescaled: Vec<RnsPoly> = (0..2 * k)
            .map(|r| {
                let mut p = poly_from_rows(ring, level, coef, &acc[r * stride..][..stride]);
                p.rescale(ring);
                p
            })
            .collect();
        let new_level = level - 1;
        let new_stride = ring.degree() * new_level;
        let mut fwd = Vec::with_capacity(2 * k * new_stride);
        for p in &rescaled {
            fwd.extend_from_slice(p.flat());
        }
        ev.try_forward_flat(new_level, &mut fwd)?;

        let p_last = ring.basis().primes()[level - 1] as f64;
        let eval = Representation::Evaluation;
        Ok((0..k)
            .map(|j| {
                let c0 = poly_from_rows(
                    ring,
                    new_level,
                    eval,
                    &fwd[2 * j * new_stride..][..new_stride],
                );
                let c1 = poly_from_rows(
                    ring,
                    new_level,
                    eval,
                    &fwd[(2 * j + 1) * new_stride..][..new_stride],
                );
                Ciphertext::from_parts(c0, c1, scales[j] / p_last)
            })
            .collect())
    }

    /// Decrypt + decode a group of ciphertexts sharing one level, in two
    /// backend calls total: `pointwise_flat` over the `k` products
    /// `c1·s` and `inverse_flat` over the `k` sums `c0 + c1·s`. Returns
    /// all `N` decoded coefficients per job, like
    /// [`he_lite::HeContext::decode`].
    ///
    /// # Panics
    ///
    /// Panics if the group mixes levels.
    pub fn decrypt_batch(
        &self,
        ctx: &HeContext,
        ev: &mut Evaluator,
        cts: Vec<Ciphertext>,
    ) -> Vec<Vec<f64>> {
        self.try_decrypt_batch(ctx, ev, cts)
            .expect("backend without a fault surface never fails")
    }

    /// Fallible [`Batcher::decrypt_batch`] (see
    /// [`Batcher::try_eval_batch`] for the retry contract).
    pub fn try_decrypt_batch(
        &self,
        ctx: &HeContext,
        ev: &mut Evaluator,
        mut cts: Vec<Ciphertext>,
    ) -> Result<Vec<Vec<f64>>, BackendError> {
        if cts.is_empty() {
            return Ok(Vec::new());
        }
        let ring = ctx.ring();
        let n = ring.degree();
        let level = cts[0].level();
        let stride = n * level;
        let k = cts.len();
        let s = self.sk_eval.truncated(level);

        let mut acc = Vec::with_capacity(k * stride);
        let mut rhs = Vec::with_capacity(k * stride);
        for ct in &mut cts {
            assert_eq!(ct.level(), level, "decrypt group mixes levels");
            ct.try_sync()?;
            acc.extend_from_slice(ct.components().1.flat());
            rhs.extend_from_slice(s.flat());
        }
        ev.try_pointwise_flat(level, &mut acc, &rhs)?;

        // Host add of c0, then one inverse call over every sum.
        let eval = Representation::Evaluation;
        for (j, ct) in cts.iter().enumerate() {
            let mut m = poly_from_rows(ring, level, eval, &acc[j * stride..][..stride]);
            m.add_assign(ct.components().0, ring);
            acc[j * stride..(j + 1) * stride].copy_from_slice(m.flat());
        }
        ev.try_inverse_flat(level, &mut acc)?;

        let coef = Representation::Coefficient;
        Ok(cts
            .iter()
            .enumerate()
            .map(|(j, ct)| {
                let m = poly_from_rows(ring, level, coef, &acc[j * stride..][..stride]);
                (0..n)
                    .map(|i| {
                        let v = m
                            .coefficient_centered(ring, i)
                            .expect("plaintext coefficients fit i128");
                        v as f64 / ct.scale()
                    })
                    .collect()
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use he_lite::HeLiteParams;

    fn ctx() -> HeContext {
        HeContext::new(HeLiteParams {
            log_n: 5,
            prime_bits: 50,
            levels: 3,
            scale_bits: 40,
            gadget_bits: 10,
            error_eta: 4,
        })
        .expect("demo params are valid")
    }

    #[test]
    fn job_seeds_are_distinct_and_stable() {
        let a = job_seed(7, TenantId(1), 0);
        assert_eq!(a, job_seed(7, TenantId(1), 0), "seed is deterministic");
        assert_ne!(a, job_seed(7, TenantId(1), 1));
        assert_ne!(a, job_seed(7, TenantId(2), 0));
        assert_ne!(a, job_seed(8, TenantId(1), 0));
    }

    #[test]
    fn batched_chain_round_trips_values() {
        let ctx = ctx();
        let mut rng = sampling::seeded_rng(41);
        let keys = ctx.keygen(&mut rng);
        let batcher = Batcher::new(&keys);

        let jobs: Vec<EncryptJob> = (0..3)
            .map(|j| EncryptJob {
                seed: job_seed(7, TenantId(j), 0),
                values: vec![1.5 + j as f64, -2.0],
            })
            .collect();
        let (cts, outs) = ctx.with_pooled_evaluator(|ev| {
            let cts = batcher.encrypt_batch(&ctx, ev, &jobs);
            // A constant weight polynomial scales every coefficient
            // (coefficient encoding: eval is a negacyclic poly product).
            let evald = batcher.eval_batch(
                &ctx,
                ev,
                cts.iter().map(|ct| (ct.clone(), vec![2.0])).collect(),
            );
            let outs = batcher.decrypt_batch(&ctx, ev, evald.clone());
            (evald, outs)
        });
        assert_eq!(cts[0].level(), ctx.params().levels - 1, "eval rescaled");
        for (j, out) in outs.iter().enumerate() {
            let want = [(1.5 + j as f64) * 2.0, -4.0];
            for (got, want) in out.iter().zip(want) {
                assert!((got - want).abs() < 1e-2, "decrypted {got}, wanted {want}");
            }
        }
    }
}
