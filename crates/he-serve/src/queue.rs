//! Per-tenant bounded queues with deficit round-robin draining.
//!
//! [`FairQueue`] is the admission-control and fairness core of the
//! server, factored out as a plain (lock-free-of-`Mutex`) data structure
//! so its invariants are directly property-testable:
//!
//! * **bounded**: a tenant's queue never holds more than `capacity`
//!   items; overflow is rejected at the door and counted;
//! * **fair**: draining follows deficit round-robin (Shreedhar &
//!   Varghese) over item *cost*, so tenants with expensive requests
//!   cannot crowd out tenants with cheap ones — between two visits every
//!   backlogged tenant's served cost advances by at least
//!   `quantum - max_cost` relative to any other.

use crate::request::TenantId;
use std::collections::{HashMap, VecDeque};

/// Items schedulable by [`FairQueue`]: anything with a non-negative cost
/// in abstract work units (the deficit round-robin currency).
pub trait Weighted {
    /// The item's scheduling cost. Items of cost 0 are treated as cost 1.
    fn cost(&self) -> u64;
}

impl Weighted for u64 {
    fn cost(&self) -> u64 {
        *self
    }
}

#[derive(Debug)]
struct TenantQueue<T> {
    items: VecDeque<T>,
    deficit: u64,
    rejected: u64,
    accepted: u64,
}

impl<T> Default for TenantQueue<T> {
    fn default() -> Self {
        TenantQueue {
            items: VecDeque::new(),
            deficit: 0,
            rejected: 0,
            accepted: 0,
        }
    }
}

/// Per-tenant bounded FIFO queues drained in deficit round-robin order.
///
/// # Example
///
/// ```
/// use he_serve::{FairQueue, TenantId};
///
/// // Costs are u64 here; the server queues whole jobs.
/// let mut q: FairQueue<u64> = FairQueue::new(2, 4);
/// q.push(TenantId(0), 3).unwrap();
/// q.push(TenantId(0), 3).unwrap();
/// assert!(q.push(TenantId(0), 3).is_err(), "capacity 2 is full");
/// assert_eq!(q.rejected_for(TenantId(0)), 1);
///
/// q.push(TenantId(1), 3).unwrap();
/// // Round-robin: one item per tenant fits in a quantum of 4.
/// let drained = q.drain(3);
/// let tenants: Vec<u32> = drained.iter().map(|(t, _)| t.0).collect();
/// assert_eq!(tenants, [0, 1, 0]);
/// ```
#[derive(Debug)]
pub struct FairQueue<T> {
    tenants: HashMap<u32, TenantQueue<T>>,
    /// Backlogged tenants in round-robin visit order.
    active: VecDeque<u32>,
    capacity: usize,
    quantum: u64,
}

impl<T: Weighted> FairQueue<T> {
    /// A queue bounding every tenant at `capacity` items, serving
    /// `quantum` cost units per round-robin visit.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `quantum` is zero.
    pub fn new(capacity: usize, quantum: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(quantum > 0, "quantum must be positive");
        FairQueue {
            tenants: HashMap::new(),
            active: VecDeque::new(),
            capacity,
            quantum,
        }
    }

    /// Admit `item` to `tenant`'s queue, or reject it (returning it) if
    /// the tenant is at capacity. Rejects are counted.
    ///
    /// # Errors
    ///
    /// Returns the item back when the tenant's queue is full.
    pub fn push(&mut self, tenant: TenantId, item: T) -> Result<(), T> {
        let tq = self.tenants.entry(tenant.0).or_default();
        if tq.items.len() >= self.capacity {
            tq.rejected += 1;
            return Err(item);
        }
        if tq.items.is_empty() {
            self.active.push_back(tenant.0);
        }
        tq.items.push_back(item);
        tq.accepted += 1;
        Ok(())
    }

    /// Drain up to `max_items` in deficit round-robin order. Each visit
    /// credits the tenant one quantum, then serves queued items while the
    /// deficit covers their cost; an emptied tenant forfeits its deficit
    /// (the DRR rule that keeps idle tenants from hoarding credit).
    /// Work-conserving: returns fewer than `max_items` only when the
    /// queue is empty.
    pub fn drain(&mut self, max_items: usize) -> Vec<(TenantId, T)> {
        let mut out = Vec::new();
        while out.len() < max_items {
            let Some(&tid) = self.active.front() else {
                break;
            };
            let tq = self.tenants.get_mut(&tid).expect("active tenant exists");
            tq.deficit = tq.deficit.saturating_add(self.quantum);
            while out.len() < max_items {
                let Some(front) = tq.items.front() else {
                    break;
                };
                let cost = front.cost().max(1);
                if cost > tq.deficit {
                    break;
                }
                tq.deficit -= cost;
                out.push((TenantId(tid), tq.items.pop_front().expect("front exists")));
            }
            if tq.items.is_empty() {
                tq.deficit = 0;
                self.active.pop_front();
            } else if out.len() < max_items {
                // Deficit exhausted: move to the back of the rotation.
                self.active.rotate_left(1);
            }
        }
        out
    }

    /// Total queued items across tenants.
    pub fn queued(&self) -> usize {
        self.tenants.values().map(|t| t.items.len()).sum()
    }

    /// Queued items for one tenant.
    pub fn queued_for(&self, tenant: TenantId) -> usize {
        self.tenants.get(&tenant.0).map_or(0, |t| t.items.len())
    }

    /// Items this tenant has had rejected at the door.
    pub fn rejected_for(&self, tenant: TenantId) -> u64 {
        self.tenants.get(&tenant.0).map_or(0, |t| t.rejected)
    }

    /// Tenant ids with at least one reject (for metrics snapshots that
    /// must show tenants who never got a single job through).
    pub fn rejected_tenants(&self) -> Vec<u32> {
        self.tenants
            .iter()
            .filter(|(_, t)| t.rejected > 0)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Items this tenant has had admitted.
    pub fn accepted_for(&self, tenant: TenantId) -> u64 {
        self.tenants.get(&tenant.0).map_or(0, |t| t.accepted)
    }

    /// The per-tenant queue bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The deficit round-robin quantum.
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_each_tenant_and_counts_rejects() {
        let mut q: FairQueue<u64> = FairQueue::new(3, 10);
        for i in 0..5u64 {
            let _ = q.push(TenantId(7), i + 1);
        }
        assert_eq!(q.queued_for(TenantId(7)), 3);
        assert_eq!(q.rejected_for(TenantId(7)), 2);
        assert_eq!(q.accepted_for(TenantId(7)), 3);
    }

    #[test]
    fn drr_interleaves_backlogged_tenants() {
        let mut q: FairQueue<u64> = FairQueue::new(16, 2);
        for t in 0..3u32 {
            for _ in 0..4 {
                q.push(TenantId(t), 2).unwrap();
            }
        }
        let order: Vec<u32> = q.drain(12).into_iter().map(|(t, _)| t.0).collect();
        assert_eq!(order, [0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn expensive_items_wait_for_deficit() {
        let mut q: FairQueue<u64> = FairQueue::new(16, 3);
        q.push(TenantId(0), 5).unwrap(); // needs two visits at quantum 3
        q.push(TenantId(1), 1).unwrap();
        let order: Vec<u32> = q.drain(8).into_iter().map(|(t, _)| t.0).collect();
        // Tenant 0's first visit banks 3 < 5; tenant 1 serves; tenant 0's
        // second visit reaches 6 ≥ 5.
        assert_eq!(order, [1, 0]);
    }

    #[test]
    fn zero_cost_items_are_charged_as_cost_one() {
        // A flood of cost-0 items must not drain unboundedly in one
        // visit: each consumes one deficit unit (`cost().max(1)`), so a
        // quantum of 2 serves exactly two per visit and a backlogged
        // peer still interleaves instead of starving.
        let mut q: FairQueue<u64> = FairQueue::new(16, 2);
        for _ in 0..4 {
            q.push(TenantId(0), 0).unwrap();
        }
        for _ in 0..2 {
            q.push(TenantId(1), 2).unwrap();
        }
        let order: Vec<u32> = q.drain(6).into_iter().map(|(t, _)| t.0).collect();
        assert_eq!(order, [0, 0, 1, 0, 0, 1]);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_is_work_conserving() {
        let mut q: FairQueue<u64> = FairQueue::new(16, 1);
        for _ in 0..5 {
            q.push(TenantId(0), 4).unwrap();
        }
        // A single backlogged tenant is revisited until max_items.
        assert_eq!(q.drain(5).len(), 5);
        assert!(q.is_empty());
    }
}
