//! Request/response vocabulary shared by the queue, batcher and server.

use he_lite::Ciphertext;
use ntt_core::backend::{BackendError, FaultClass};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A tenant's identity. Tenants need no registration: the first submit
/// under an id creates its queue and metrics lazily.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// One job a tenant submits to the server.
#[derive(Debug, Clone)]
pub enum Request {
    /// Encrypt `values` under the server's public key.
    Encrypt {
        /// Real values to encode and encrypt (≤ N of them).
        values: Vec<f64>,
    },
    /// Weighted plaintext multiply + rescale: `ct ⊙ encode(weights)`,
    /// one level consumed. The ciphertext must be at level ≥ 2.
    Eval {
        /// The ciphertext to transform.
        ct: Ciphertext,
        /// Plaintext weights (≤ N of them).
        weights: Vec<f64>,
    },
    /// Decrypt with the server's secret key and decode.
    Decrypt {
        /// The ciphertext to open.
        ct: Ciphertext,
    },
    /// Bootstrap a level-1 ciphertext back to evaluation depth (requires
    /// [`ServeConfig::boot`](crate::ServeConfig::boot)). The input must
    /// be encoded at the bootstrapper's input scale.
    Boot {
        /// The exhausted ciphertext to refresh.
        ct: Ciphertext,
    },
}

impl Request {
    /// Dispatch kind + level — jobs batch together only within one key.
    pub(crate) fn group_key(&self, top_level: usize) -> (u8, usize) {
        match self {
            Request::Encrypt { .. } => (0, top_level),
            Request::Eval { ct, .. } => (1, ct.level()),
            Request::Decrypt { ct } => (2, ct.level()),
            Request::Boot { ct } => (3, ct.level()),
        }
    }

    /// Scheduling cost in abstract work units, proportional to the
    /// number of polynomial transforms the job dispatches — the deficit
    /// round-robin currency ([`crate::FairQueue`]).
    pub fn cost(&self) -> u64 {
        match self {
            // 4 forward NTTs + 2 pointwise rows.
            Request::Encrypt { .. } => 6,
            // 1 forward + 2 pointwise + 2 inverse + 2 forward.
            Request::Eval { .. } => 7,
            // 1 pointwise + 1 inverse.
            Request::Decrypt { .. } => 2,
            // ~15 rotations (each a transform pair + key switch) plus
            // the EvalMod multiply chain — an order of magnitude above
            // any other kind, so the fair queue prices it accordingly.
            Request::Boot { .. } => 96,
        }
    }
}

/// The server's answer to one [`Request`].
#[derive(Debug, Clone)]
pub enum Response {
    /// Answer to [`Request::Encrypt`].
    Encrypted(Ciphertext),
    /// Answer to [`Request::Eval`].
    Evaluated(Ciphertext),
    /// Answer to [`Request::Decrypt`].
    Decrypted(Vec<f64>),
    /// Answer to [`Request::Boot`].
    Bootstrapped(Ciphertext),
    /// The job was admitted but could not be completed — every failure
    /// carries a classified [`ServeError`]; the server never answers
    /// with a silently wrong result.
    Failed(ServeError),
}

/// Why the server failed a job it had admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A device fault survived the bounded retry budget *and* the CPU
    /// fallback (or degradation was impossible).
    Fault {
        /// The classified backend error that ended the job.
        error: BackendError,
        /// Retry attempts spent before giving up.
        retries: u32,
    },
    /// The job's deadline expired before (or while) it executed.
    DeadlineExceeded,
    /// The job's [`Ticket`](crate::Ticket) was cancelled before it
    /// executed.
    Cancelled,
}

impl ServeError {
    /// The fault class for metrics, or `None` for a cancellation (which
    /// is a caller decision, not a fault).
    pub fn fault_class(&self) -> Option<FaultClass> {
        match self {
            ServeError::Fault { error, .. } => Some(error.class()),
            ServeError::DeadlineExceeded => Some(FaultClass::Deadline),
            ServeError::Cancelled => None,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Fault { error, retries } => {
                write!(f, "{error} (after {retries} retries)")
            }
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::Cancelled => write!(f, "cancelled by caller"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A finished job: the response plus its end-to-end latency
/// (submit → response ready).
#[derive(Debug)]
pub struct Completed {
    /// The server's answer.
    pub response: Response,
    /// Queue wait + batching + execution time.
    pub latency: Duration,
}

/// Why a submit was refused at the door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The tenant's bounded queue is full — backpressure. The reject is
    /// counted in the tenant's metrics.
    Backpressure {
        /// The refused tenant.
        tenant: TenantId,
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// The request can never execute (e.g. an `Eval` at level 1, with no
    /// prime left to rescale into).
    Invalid(&'static str),
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Backpressure { tenant, capacity } => {
                write!(f, "{tenant} queue full (capacity {capacity})")
            }
            SubmitError::Invalid(why) => write!(f, "invalid request: {why}"),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A queued job: the request plus its reply channel and timing.
#[derive(Debug)]
pub(crate) struct Job {
    pub tenant: TenantId,
    /// Per-tenant submission sequence number; with the tenant id it seeds
    /// the job's encryption randomness, so results are independent of
    /// batch composition and worker interleaving.
    pub seq: u64,
    pub request: Request,
    pub submitted_at: Instant,
    /// Fail the job with [`ServeError::DeadlineExceeded`] if it has not
    /// executed by this instant (from [`ServeConfig::deadline`]).
    ///
    /// [`ServeConfig::deadline`]: crate::ServeConfig::deadline
    pub deadline: Option<Instant>,
    /// Set by [`Ticket::cancel`](crate::Ticket::cancel); checked at
    /// dispatch (best-effort — a job already executing completes).
    pub cancelled: Arc<AtomicBool>,
    pub reply: std::sync::mpsc::Sender<Completed>,
}

impl crate::queue::Weighted for Job {
    fn cost(&self) -> u64 {
        self.request.cost()
    }
}
