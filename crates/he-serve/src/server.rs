//! The serving loop: worker threads draining the fair queue into the
//! batcher through the context's evaluator pool.

use crate::batcher::{job_seed, Batcher, EncryptJob};
use crate::metrics::{LatencyHistogram, MetricsSnapshot, TenantSnapshot};
use crate::queue::FairQueue;
use crate::request::{Completed, Job, Request, Response, SubmitError, TenantId};
use he_lite::{sampling, HeContext};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning knobs for [`HeServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Per-tenant queue bound; submits past it get
    /// [`SubmitError::Backpressure`].
    pub queue_capacity: usize,
    /// Deficit round-robin quantum in request cost units
    /// ([`Request::cost`]).
    pub quantum: u64,
    /// Most jobs one dispatch drains (the batching window).
    pub batch_max: usize,
    /// Worker threads draining the queue. Each dispatch borrows an
    /// evaluator from the context pool, so the pool grows to at most
    /// this many.
    pub workers: usize,
    /// When false, workers drain one job at a time — the unbatched
    /// control used to measure the batching win.
    pub batching: bool,
    /// Seeds key generation and the per-job encryption randomness
    /// domain, making a serving run reproducible end to end.
    pub key_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            quantum: 8,
            batch_max: 16,
            workers: 2,
            batching: true,
            key_seed: 7,
        }
    }
}

/// A claim on one submitted job's answer.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Completed>,
}

impl Ticket {
    /// Block until the server answers. `None` only if the server was
    /// torn down with the job still queued.
    pub fn wait(self) -> Option<Completed> {
        self.rx.recv().ok()
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Default)]
struct TenantMetrics {
    completed: u64,
    latency: LatencyHistogram,
    upload_words: u64,
    download_words: u64,
}

#[derive(Default)]
struct MetricsInner {
    tenants: HashMap<u32, TenantMetrics>,
    batches: u64,
    batched_jobs: u64,
}

struct ServerInner {
    ctx: HeContext,
    batcher: Batcher,
    config: ServeConfig,
    queue: Mutex<FairQueue<Job>>,
    work_ready: Condvar,
    seqs: Mutex<HashMap<u32, u64>>,
    metrics: Mutex<MetricsInner>,
    shutdown: AtomicBool,
}

/// A multi-tenant HE serving front end: submit jobs, get [`Ticket`]s,
/// read per-tenant metrics. See the crate docs for the architecture and
/// a full example.
pub struct HeServer {
    inner: Arc<ServerInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl HeServer {
    /// Generate keys from `config.key_seed` and spawn `config.workers`
    /// serving threads over `ctx`'s evaluator pool.
    pub fn start(ctx: HeContext, config: ServeConfig) -> Self {
        let mut rng = sampling::seeded_rng(config.key_seed);
        let keys = ctx.keygen(&mut rng);
        let batcher = Batcher::new(&keys);
        let inner = Arc::new(ServerInner {
            queue: Mutex::new(FairQueue::new(config.queue_capacity, config.quantum)),
            work_ready: Condvar::new(),
            seqs: Mutex::new(HashMap::new()),
            metrics: Mutex::new(MetricsInner::default()),
            shutdown: AtomicBool::new(false),
            ctx,
            batcher,
            config,
        });
        let workers = (0..inner.config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("he-serve-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawn serving worker")
            })
            .collect();
        HeServer {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Queue one job for `tenant`. Invalid jobs and backpressure are
    /// refused synchronously; admitted jobs answer through the returned
    /// [`Ticket`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] for jobs that can never execute,
    /// [`SubmitError::Backpressure`] when the tenant's queue is full,
    /// [`SubmitError::ShuttingDown`] after [`HeServer::shutdown`] began.
    pub fn submit(&self, tenant: TenantId, request: Request) -> Result<Ticket, SubmitError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let n = self.inner.ctx.params().n();
        match &request {
            Request::Encrypt { values } if values.len() > n => {
                return Err(SubmitError::Invalid("more values than slots"));
            }
            Request::Eval { weights, .. } if weights.len() > n => {
                return Err(SubmitError::Invalid("more weights than slots"));
            }
            Request::Eval { ct, .. } if ct.level() < 2 => {
                return Err(SubmitError::Invalid("no prime left to rescale into"));
            }
            _ => {}
        }
        let seq = {
            let mut seqs = lock(&self.inner.seqs);
            let c = seqs.entry(tenant.0).or_insert(0);
            let seq = *c;
            *c += 1;
            seq
        };
        let (tx, rx) = mpsc::channel();
        let job = Job {
            tenant,
            seq,
            request,
            submitted_at: Instant::now(),
            reply: tx,
        };
        let mut q = lock(&self.inner.queue);
        let capacity = q.capacity();
        q.push(tenant, job)
            .map_err(|_| SubmitError::Backpressure { tenant, capacity })?;
        drop(q);
        self.inner.work_ready.notify_one();
        Ok(Ticket { rx })
    }

    /// The context the server runs on.
    pub fn context(&self) -> &HeContext {
        &self.inner.ctx
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.inner.config
    }

    /// Jobs currently queued across all tenants.
    pub fn queued(&self) -> usize {
        lock(&self.inner.queue).queued()
    }

    /// A point-in-time copy of the per-tenant accounting.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.snapshot()
    }

    /// Stop accepting work, drain what is queued, join the workers and
    /// return the final accounting.
    pub fn shutdown(&self) -> MetricsSnapshot {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.work_ready.notify_all();
        for w in lock(&self.workers).drain(..) {
            let _ = w.join();
        }
        self.inner.snapshot()
    }
}

impl Drop for HeServer {
    fn drop(&mut self) {
        if !self.inner.shutdown.load(Ordering::Acquire) {
            self.shutdown();
        }
    }
}

impl ServerInner {
    fn worker_loop(&self) {
        loop {
            let drained = {
                let mut q = lock(&self.queue);
                loop {
                    let max = if self.config.batching {
                        self.config.batch_max.max(1)
                    } else {
                        1
                    };
                    let batch = q.drain(max);
                    if !batch.is_empty() {
                        break batch;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    q = self
                        .work_ready
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            // More may remain queued than one drain took; let a sibling
            // worker overlap with this dispatch.
            self.work_ready.notify_one();

            // Jobs batch only within one (kind, level) group.
            let top = self.ctx.params().levels;
            let mut groups: Vec<((u8, usize), Vec<Job>)> = Vec::new();
            for (_, job) in drained {
                let key = job.request.group_key(top);
                match groups.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, g)) => g.push(job),
                    None => groups.push((key, vec![job])),
                }
            }
            for (_, group) in groups {
                self.execute_group(group);
            }
        }
    }

    /// Run one homogeneous group through the batcher on a pooled
    /// evaluator, then account and answer each job.
    fn execute_group(&self, jobs: Vec<Job>) {
        let before = self.ctx.transfer_stats();
        let domain = self.config.key_seed;

        let mut meta = Vec::with_capacity(jobs.len());
        let responses: Vec<Response> = match jobs[0].request {
            Request::Encrypt { .. } => {
                let mut batch = Vec::with_capacity(jobs.len());
                for job in &jobs {
                    let Request::Encrypt { values } = &job.request else {
                        unreachable!("group is homogeneous");
                    };
                    batch.push(EncryptJob {
                        seed: job_seed(domain, job.tenant, job.seq),
                        values: values.clone(),
                    });
                }
                self.ctx
                    .with_pooled_evaluator(|ev| self.batcher.encrypt_batch(&self.ctx, ev, &batch))
                    .into_iter()
                    .map(Response::Encrypted)
                    .collect()
            }
            Request::Eval { .. } => {
                let mut batch = Vec::with_capacity(jobs.len());
                for job in &jobs {
                    let Request::Eval { ct, weights } = &job.request else {
                        unreachable!("group is homogeneous");
                    };
                    batch.push((ct.clone(), weights.clone()));
                }
                self.ctx
                    .with_pooled_evaluator(|ev| self.batcher.eval_batch(&self.ctx, ev, batch))
                    .into_iter()
                    .map(Response::Evaluated)
                    .collect()
            }
            Request::Decrypt { .. } => {
                let mut batch = Vec::with_capacity(jobs.len());
                for job in &jobs {
                    let Request::Decrypt { ct } = &job.request else {
                        unreachable!("group is homogeneous");
                    };
                    batch.push(ct.clone());
                }
                self.ctx
                    .with_pooled_evaluator(|ev| self.batcher.decrypt_batch(&self.ctx, ev, batch))
                    .into_iter()
                    .map(Response::Decrypted)
                    .collect()
            }
        };
        let delta = self.ctx.transfer_stats().since(&before);

        for (job, response) in jobs.into_iter().zip(responses) {
            let latency = job.submitted_at.elapsed();
            meta.push((job.tenant, latency));
            // A dropped Ticket just discards the answer.
            let _ = job.reply.send(Completed { response, latency });
        }

        let mut m = lock(&self.metrics);
        m.batches += 1;
        m.batched_jobs += meta.len() as u64;
        let share = meta.len() as u64;
        for (tenant, latency) in meta {
            let t = m.tenants.entry(tenant.0).or_default();
            t.completed += 1;
            t.latency
                .record(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
            // Proportional (per-job) share of this batch's transfer
            // delta; approximate when workers dispatch concurrently.
            t.upload_words += delta.upload_words / share;
            t.download_words += delta.download_words / share;
        }
    }

    fn snapshot(&self) -> MetricsSnapshot {
        let m = lock(&self.metrics);
        let q = lock(&self.queue);
        let mut snap = MetricsSnapshot {
            batches: m.batches,
            batched_jobs: m.batched_jobs,
            ..Default::default()
        };
        for (&id, t) in &m.tenants {
            snap.tenants.insert(
                id,
                TenantSnapshot {
                    completed: t.completed,
                    rejected: q.rejected_for(TenantId(id)),
                    latency: t.latency.clone(),
                    upload_words: t.upload_words,
                    download_words: t.download_words,
                },
            );
        }
        // Tenants that only ever got rejected still deserve a row.
        for id in q.rejected_tenants() {
            snap.tenants.entry(id).or_insert_with(|| TenantSnapshot {
                rejected: q.rejected_for(TenantId(id)),
                ..Default::default()
            });
        }
        snap
    }
}
