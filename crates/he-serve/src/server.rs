//! The serving loop: worker threads draining the fair queue into the
//! batcher through the context's evaluator pool, with a self-healing
//! dispatch path — bounded retry on transient device faults, evaluator
//! quarantine on fatal ones, and graceful degradation to a host/CPU
//! evaluator when the device stays down.

use crate::batcher::{job_seed, Batcher, EncryptJob};
use crate::metrics::{FaultCounts, LatencyHistogram, MetricsSnapshot, TenantSnapshot};
use crate::queue::FairQueue;
use crate::request::{Completed, Job, Request, Response, ServeError, SubmitError, TenantId};
use he_boot::{BootParams, Bootstrapper};
use he_lite::{sampling, Ciphertext, HeContext};
use ntt_core::backend::{BackendError, CpuBackend, Evaluator, FaultClass, TransferStats};
use ntt_core::RnsRing;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Bounded-retry policy for transient device faults.
///
/// The pause before attempt `k` is `backoff · 2^(k-1)` plus a
/// deterministic jitter in `[0, pause/2)`, capped at `backoff_cap` and
/// never sleeping past the tightest live deadline in the batch. Jitter is
/// derived from a server-global counter (no entropy source), so runs are
/// reproducible while concurrent workers still decorrelate.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retry attempts after the first failure (0 disables retry).
    pub max_retries: u32,
    /// Base pause before the first retry.
    pub backoff: Duration,
    /// Upper bound on the exponential pause.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    /// Reads `NTT_WARP_RETRY_MAX` (default 3) and `NTT_WARP_BACKOFF_US`
    /// (default 50); the cap is fixed at 100× the base backoff.
    fn default() -> Self {
        let max_retries = std::env::var("NTT_WARP_RETRY_MAX")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3);
        let backoff_us = std::env::var("NTT_WARP_BACKOFF_US")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(50);
        let backoff = Duration::from_micros(backoff_us);
        RetryPolicy {
            max_retries,
            backoff,
            backoff_cap: backoff * 100,
        }
    }
}

/// Tuning knobs for [`HeServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Per-tenant queue bound; submits past it get
    /// [`SubmitError::Backpressure`].
    pub queue_capacity: usize,
    /// Deficit round-robin quantum in request cost units
    /// ([`Request::cost`]).
    pub quantum: u64,
    /// Most jobs one dispatch drains (the batching window).
    pub batch_max: usize,
    /// Worker threads draining the queue. Each dispatch borrows an
    /// evaluator from the context pool, so the pool grows to at most
    /// this many.
    pub workers: usize,
    /// When false, workers drain one job at a time — the unbatched
    /// control used to measure the batching win.
    pub batching: bool,
    /// Seeds key generation and the per-job encryption randomness
    /// domain, making a serving run reproducible end to end.
    pub key_seed: u64,
    /// Per-request deadline measured from submit. A job that has not
    /// executed when it expires is answered
    /// [`ServeError::DeadlineExceeded`]; retry pauses never sleep past
    /// it. `None` means jobs wait forever.
    pub deadline: Option<Duration>,
    /// Retry policy for transient device faults.
    pub retry: RetryPolicy,
    /// When set, the server builds a [`Bootstrapper`] at startup (keys
    /// and DFT diagonals resident next to the serving keys) and accepts
    /// [`Request::Boot`] jobs. The context must provide at least
    /// [`BootParams::min_levels`] levels.
    pub boot: Option<BootParams>,
}

impl Default for ServeConfig {
    /// The deadline also honors `NTT_WARP_DEADLINE_MS` (unset = no
    /// deadline); the retry policy reads its own env knobs
    /// ([`RetryPolicy::default`]).
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            quantum: 8,
            batch_max: 16,
            workers: 2,
            batching: true,
            key_seed: 7,
            deadline: std::env::var("NTT_WARP_DEADLINE_MS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .map(Duration::from_millis),
            retry: RetryPolicy::default(),
            boot: None,
        }
    }
}

/// A claim on one submitted job's answer.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Completed>,
    cancel: Arc<AtomicBool>,
}

impl Ticket {
    /// Block until the server answers. `None` only if the server was
    /// torn down with the job still queued, or the dispatch that held
    /// the job panicked (counted in
    /// [`MetricsSnapshot::worker_panics`]).
    pub fn wait(self) -> Option<Completed> {
        self.rx.recv().ok()
    }

    /// Ask the server to drop this job. Best-effort: a job already
    /// executing completes normally; a job still queued is answered
    /// [`ServeError::Cancelled`] at dispatch.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Release);
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One tenant's cost-weighted share of a dispatch's transfer delta:
/// `delta · cost / total_cost` (integer floor; zero total means no
/// executed jobs, so no attribution).
fn cost_share(delta_words: u64, cost: u64, total_cost: u64) -> u64 {
    (delta_words * cost).checked_div(total_cost).unwrap_or(0)
}

#[derive(Default)]
struct TenantMetrics {
    completed: u64,
    failed: u64,
    latency: LatencyHistogram,
    upload_words: u64,
    download_words: u64,
}

#[derive(Default)]
struct MetricsInner {
    tenants: HashMap<u32, TenantMetrics>,
    batches: u64,
    batched_jobs: u64,
    retries: u64,
    faults: FaultCounts,
    degraded_jobs: u64,
    deadline_misses: u64,
    cancelled: u64,
    worker_panics: u64,
}

/// What one job's dispatch produced, for whole-drain transfer
/// attribution. `executed` is false for jobs shed before touching the
/// backend (cancelled / already past deadline), which therefore earn no
/// share of the transfer delta.
struct JobOutcome {
    tenant: TenantId,
    cost: u64,
    executed: bool,
}

/// A lazily-grown pool of host/CPU evaluators for degraded dispatches.
///
/// The pre-pool design held one `Mutex<Option<Evaluator>>`: once the
/// device wedged, every degraded group serialized on that single
/// evaluator, collapsing worker concurrency exactly when throughput was
/// already hurting. Here each checkout pops an idle evaluator (or builds
/// a fresh one when none is free), so concurrent degraded groups
/// proceed in parallel; the pool high-water mark is bounded by the
/// worker count.
struct FallbackPool {
    idle: Mutex<Vec<Evaluator>>,
    /// Evaluators ever built — the pool's high-water mark (reported as
    /// [`MetricsSnapshot::fallback_evaluators`]).
    built: AtomicU64,
}

impl FallbackPool {
    fn new() -> Self {
        FallbackPool {
            idle: Mutex::new(Vec::new()),
            built: AtomicU64::new(0),
        }
    }

    /// Run `f` on a checked-out host evaluator, returning the evaluator
    /// to the pool afterwards (host evaluators don't fault, so they are
    /// always safe to reuse).
    fn run<R>(&self, ring: &RnsRing, f: impl FnOnce(&mut Evaluator) -> R) -> R {
        let mut ev = lock(&self.idle).pop().unwrap_or_else(|| {
            self.built.fetch_add(1, Ordering::Relaxed);
            Evaluator::with_backend(ring, Box::new(CpuBackend::from_env()))
        });
        let out = f(&mut ev);
        lock(&self.idle).push(ev);
        out
    }

    fn built(&self) -> u64 {
        self.built.load(Ordering::Relaxed)
    }
}

struct ServerInner {
    ctx: Arc<HeContext>,
    batcher: Batcher,
    /// Built at startup when [`ServeConfig::boot`] is set; owns the
    /// rotation keys and DFT diagonals (shared device memory, not any
    /// pool member), so they survive evaluator quarantine + re-fork.
    boot: Option<Bootstrapper>,
    config: ServeConfig,
    queue: Mutex<FairQueue<Job>>,
    work_ready: Condvar,
    seqs: Mutex<HashMap<u32, u64>>,
    metrics: Mutex<MetricsInner>,
    shutdown: AtomicBool,
    /// Host/CPU evaluators groups degrade to when the device path
    /// fails. Bit-identical to the device path (the backends are
    /// conformant), so degradation is invisible in results.
    fallback: FallbackPool,
    /// Set after a fatal (sticky) device fault; later dispatches skip
    /// the device entirely instead of re-discovering the wedge.
    device_down: AtomicBool,
    /// Counter feeding the deterministic retry jitter.
    jitter_salt: AtomicU64,
}

/// A multi-tenant HE serving front end: submit jobs, get [`Ticket`]s,
/// read per-tenant metrics. See the crate docs for the architecture and
/// a full example.
pub struct HeServer {
    inner: Arc<ServerInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl HeServer {
    /// Generate keys from `config.key_seed` and spawn `config.workers`
    /// serving threads over `ctx`'s evaluator pool.
    pub fn start(ctx: HeContext, config: ServeConfig) -> Self {
        let ctx = Arc::new(ctx);
        let mut rng = sampling::seeded_rng(config.key_seed);
        let keys = ctx.keygen(&mut rng);
        let batcher = Batcher::new(&keys);
        let boot = config
            .boot
            .map(|bp| Bootstrapper::new(Arc::clone(&ctx), &keys, bp, &mut rng));
        let inner = Arc::new(ServerInner {
            queue: Mutex::new(FairQueue::new(config.queue_capacity, config.quantum)),
            work_ready: Condvar::new(),
            seqs: Mutex::new(HashMap::new()),
            metrics: Mutex::new(MetricsInner::default()),
            shutdown: AtomicBool::new(false),
            fallback: FallbackPool::new(),
            device_down: AtomicBool::new(false),
            jitter_salt: AtomicU64::new(0),
            ctx,
            batcher,
            boot,
            config,
        });
        let workers = (0..inner.config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("he-serve-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawn serving worker")
            })
            .collect();
        HeServer {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Queue one job for `tenant`. Invalid jobs and backpressure are
    /// refused synchronously; admitted jobs answer through the returned
    /// [`Ticket`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] for jobs that can never execute,
    /// [`SubmitError::Backpressure`] when the tenant's queue is full,
    /// [`SubmitError::ShuttingDown`] after [`HeServer::shutdown`] began.
    pub fn submit(&self, tenant: TenantId, request: Request) -> Result<Ticket, SubmitError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let n = self.inner.ctx.params().n();
        match &request {
            Request::Encrypt { values } if values.len() > n => {
                return Err(SubmitError::Invalid("more values than slots"));
            }
            Request::Eval { weights, .. } if weights.len() > n => {
                return Err(SubmitError::Invalid("more weights than slots"));
            }
            Request::Eval { ct, .. } if ct.level() < 2 => {
                return Err(SubmitError::Invalid("no prime left to rescale into"));
            }
            Request::Boot { ct } => {
                let Some(boot) = &self.inner.boot else {
                    return Err(SubmitError::Invalid("server has no bootstrapper"));
                };
                if ct.level() != 1 {
                    return Err(SubmitError::Invalid("bootstrap input must be at level 1"));
                }
                if (ct.scale() / boot.input_scale() - 1.0).abs() > 1e-9 {
                    return Err(SubmitError::Invalid(
                        "bootstrap input must be encoded at the bootstrapper's input scale",
                    ));
                }
            }
            _ => {}
        }
        let seq = {
            let mut seqs = lock(&self.inner.seqs);
            let c = seqs.entry(tenant.0).or_insert(0);
            let seq = *c;
            *c += 1;
            seq
        };
        let (tx, rx) = mpsc::channel();
        let cancelled = Arc::new(AtomicBool::new(false));
        let now = Instant::now();
        let job = Job {
            tenant,
            seq,
            request,
            submitted_at: now,
            deadline: self.inner.config.deadline.map(|d| now + d),
            cancelled: Arc::clone(&cancelled),
            reply: tx,
        };
        let mut q = lock(&self.inner.queue);
        let capacity = q.capacity();
        q.push(tenant, job)
            .map_err(|_| SubmitError::Backpressure { tenant, capacity })?;
        drop(q);
        self.inner.work_ready.notify_one();
        Ok(Ticket {
            rx,
            cancel: cancelled,
        })
    }

    /// The context the server runs on.
    pub fn context(&self) -> &HeContext {
        &self.inner.ctx
    }

    /// The bootstrapping engine, when [`ServeConfig::boot`] was set —
    /// callers need it for [`Bootstrapper::input_scale`] when encoding
    /// [`Request::Boot`] inputs.
    pub fn bootstrapper(&self) -> Option<&Bootstrapper> {
        self.inner.boot.as_ref()
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.inner.config
    }

    /// Jobs currently queued across all tenants.
    pub fn queued(&self) -> usize {
        lock(&self.inner.queue).queued()
    }

    /// A point-in-time copy of the per-tenant accounting.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.snapshot()
    }

    /// Stop accepting work, drain what is queued, join the workers and
    /// return the final accounting.
    pub fn shutdown(&self) -> MetricsSnapshot {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.work_ready.notify_all();
        for w in lock(&self.workers).drain(..) {
            let _ = w.join();
        }
        self.inner.snapshot()
    }
}

impl Drop for HeServer {
    fn drop(&mut self) {
        if !self.inner.shutdown.load(Ordering::Acquire) {
            self.shutdown();
        }
    }
}

impl ServerInner {
    fn worker_loop(&self) {
        loop {
            let drained = {
                let mut q = lock(&self.queue);
                loop {
                    let max = if self.config.batching {
                        self.config.batch_max.max(1)
                    } else {
                        1
                    };
                    let batch = q.drain(max);
                    if !batch.is_empty() {
                        break batch;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    q = self
                        .work_ready
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            // More may remain queued than one drain took; let a sibling
            // worker overlap with this dispatch.
            self.work_ready.notify_one();

            // Jobs batch only within one (kind, level) group.
            let top = self.ctx.params().levels;
            let mut groups: Vec<((u8, usize), Vec<Job>)> = Vec::new();
            for (_, job) in drained {
                let key = job.request.group_key(top);
                match groups.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, g)) => g.push(job),
                    None => groups.push((key, vec![job])),
                }
            }

            // One transfer window around the whole drain: the context's
            // ledger is global, so per-group deltas would double-count
            // under concurrent workers no less — and the cost-weighted
            // split needs every group's jobs in one denominator anyway.
            let before = self.ctx.transfer_stats();
            let mut outcomes: Vec<JobOutcome> = Vec::new();
            for (_, group) in groups {
                // Contain a panicking dispatch: its jobs' tickets observe
                // a disconnect, the worker and sibling groups survive.
                match catch_unwind(AssertUnwindSafe(|| self.execute_group(group))) {
                    Ok(mut done) => outcomes.append(&mut done),
                    Err(_) => lock(&self.metrics).worker_panics += 1,
                }
            }
            let delta = self.ctx.transfer_stats().since(&before);
            self.attribute_transfers(&outcomes, &delta);
        }
    }

    /// Split the drain's transfer delta across its executed jobs in
    /// proportion to [`Request::cost`] — a 6-cost encrypt is charged 3×
    /// the words of a 2-cost decrypt sharing the window, where an even
    /// split would bill them alike.
    fn attribute_transfers(&self, outcomes: &[JobOutcome], delta: &TransferStats) {
        let total: u64 = outcomes.iter().filter(|o| o.executed).map(|o| o.cost).sum();
        if total == 0 {
            return;
        }
        let mut m = lock(&self.metrics);
        for o in outcomes.iter().filter(|o| o.executed) {
            let t = m.tenants.entry(o.tenant.0).or_default();
            t.upload_words += cost_share(delta.upload_words, o.cost, total);
            t.download_words += cost_share(delta.download_words, o.cost, total);
        }
    }

    /// Run one homogeneous group through the self-healing dispatch path:
    /// shed cancelled/expired jobs, try the pooled (device) evaluator,
    /// retry transient faults under the backoff policy, degrade the
    /// group to the host evaluator when the device path is out of
    /// budget, and answer every job exactly once.
    fn execute_group(&self, jobs: Vec<Job>) -> Vec<JobOutcome> {
        let mut outcomes = Vec::with_capacity(jobs.len());
        let mut live = jobs;
        let mut retries_used: u32 = 0;
        let mut degraded = self.device_down.load(Ordering::Acquire);

        loop {
            // Shed jobs that were cancelled or expired while queued or
            // while this loop was backing off.
            let now = Instant::now();
            let mut still = Vec::with_capacity(live.len());
            for job in live {
                if job.cancelled.load(Ordering::Acquire) {
                    outcomes.push(self.answer_failed(job, ServeError::Cancelled));
                } else if job.deadline.is_some_and(|d| now >= d) {
                    outcomes.push(self.answer_failed(job, ServeError::DeadlineExceeded));
                } else {
                    still.push(job);
                }
            }
            live = still;
            if live.is_empty() {
                return outcomes;
            }

            let result = if degraded {
                self.run_fallback(&live)
            } else {
                self.ctx
                    .try_with_pooled_evaluator(|ev| self.run_batch(ev, &live))
            };

            match result {
                Ok(responses) => {
                    let mut m = lock(&self.metrics);
                    m.batches += 1;
                    m.batched_jobs += live.len() as u64;
                    if degraded {
                        m.degraded_jobs += live.len() as u64;
                    }
                    drop(m);
                    for (job, response) in live.into_iter().zip(responses) {
                        outcomes.push(self.answer_ok(job, response));
                    }
                    return outcomes;
                }
                Err(e) => {
                    lock(&self.metrics).faults.record(e.class());
                    if !degraded && e.is_transient() && retries_used < self.config.retry.max_retries
                    {
                        retries_used += 1;
                        lock(&self.metrics).retries += 1;
                        self.backoff_pause(retries_used, &live);
                        continue;
                    }
                    if !degraded {
                        // Device path is out of budget for this group.
                        // A fatal fault means the executor is wedged, not
                        // just unlucky — remember that globally so later
                        // groups skip straight to the host evaluator.
                        if e.class() == FaultClass::Fatal {
                            self.device_down.store(true, Ordering::Release);
                        }
                        degraded = true;
                        continue;
                    }
                    // Even the host evaluator failed: answer a classified
                    // error rather than retrying forever.
                    for job in live {
                        let err = ServeError::Fault {
                            error: e.clone(),
                            retries: retries_used,
                        };
                        outcomes.push(self.answer_failed(job, err));
                    }
                    return outcomes;
                }
            }
        }
    }

    /// Dispatch one homogeneous group on `ev` through the batcher's
    /// fallible pipelines. Inputs are cloned per attempt, so a retry (or
    /// the fallback) re-runs the identical batch.
    fn run_batch(&self, ev: &mut Evaluator, jobs: &[Job]) -> Result<Vec<Response>, BackendError> {
        let domain = self.config.key_seed;
        match jobs[0].request {
            Request::Encrypt { .. } => {
                let batch: Vec<EncryptJob> = jobs
                    .iter()
                    .map(|job| {
                        let Request::Encrypt { values } = &job.request else {
                            unreachable!("group is homogeneous");
                        };
                        EncryptJob {
                            seed: job_seed(domain, job.tenant, job.seq),
                            values: values.clone(),
                        }
                    })
                    .collect();
                Ok(self
                    .batcher
                    .try_encrypt_batch(&self.ctx, ev, &batch)?
                    .into_iter()
                    .map(Response::Encrypted)
                    .collect())
            }
            Request::Eval { .. } => {
                let batch: Vec<(Ciphertext, Vec<f64>)> = jobs
                    .iter()
                    .map(|job| {
                        let Request::Eval { ct, weights } = &job.request else {
                            unreachable!("group is homogeneous");
                        };
                        (ct.clone(), weights.clone())
                    })
                    .collect();
                Ok(self
                    .batcher
                    .try_eval_batch(&self.ctx, ev, batch)?
                    .into_iter()
                    .map(Response::Evaluated)
                    .collect())
            }
            Request::Decrypt { .. } => {
                let batch: Vec<Ciphertext> = jobs
                    .iter()
                    .map(|job| {
                        let Request::Decrypt { ct } = &job.request else {
                            unreachable!("group is homogeneous");
                        };
                        ct.clone()
                    })
                    .collect();
                Ok(self
                    .batcher
                    .try_decrypt_batch(&self.ctx, ev, batch)?
                    .into_iter()
                    .map(Response::Decrypted)
                    .collect())
            }
            Request::Boot { .. } => {
                // Bootstrap drives the context's own evaluator pool (its
                // rotations each check out an evaluator via the fallible
                // path), not the group's `ev` — the engine's keys and
                // diagonals live in shared device memory, so any pool
                // member can execute against them.
                let boot = self.boot.as_ref().expect("Boot jobs validated at submit");
                jobs.iter()
                    .map(|job| {
                        let Request::Boot { ct } = &job.request else {
                            unreachable!("group is homogeneous");
                        };
                        boot.try_bootstrap(ct).map(Response::Bootstrapped)
                    })
                    .collect()
            }
        }
    }

    /// Run the group on a checked-out host/CPU evaluator from the
    /// fallback pool. Results are bit-identical to the device path
    /// (backend conformance), so degradation never changes an answer —
    /// and concurrent degraded groups no longer serialize on a single
    /// evaluator mutex.
    fn run_fallback(&self, jobs: &[Job]) -> Result<Vec<Response>, BackendError> {
        self.fallback
            .run(self.ctx.ring(), |ev| self.run_batch(ev, jobs))
    }

    /// Sleep before retry `attempt` (1-based): exponential backoff with
    /// deterministic jitter, capped by the policy and by the tightest
    /// live deadline.
    fn backoff_pause(&self, attempt: u32, live: &[Job]) {
        let policy = &self.config.retry;
        if policy.backoff.is_zero() {
            return;
        }
        let exp = 1u32 << (attempt - 1).min(16);
        let base = policy.backoff.saturating_mul(exp).min(policy.backoff_cap);
        // splitmix64 over a shared counter: decorrelates workers retrying
        // into the same fault window without an entropy source.
        let salt = self.jitter_salt.fetch_add(1, Ordering::Relaxed);
        let mut x = salt
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0xda94_2042_e4dd_58b5);
        x ^= x >> 29;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 32;
        let half_ns = (base.as_nanos().min(u128::from(u64::MAX)) as u64) / 2;
        let jitter = if half_ns == 0 { 0 } else { x % half_ns };
        let mut pause = base + Duration::from_nanos(jitter);
        if let Some(min_deadline) = live.iter().filter_map(|j| j.deadline).min() {
            pause = pause.min(min_deadline.saturating_duration_since(Instant::now()));
        }
        if !pause.is_zero() {
            std::thread::sleep(pause);
        }
    }

    /// Answer one job successfully and account it.
    fn answer_ok(&self, job: Job, response: Response) -> JobOutcome {
        let latency = job.submitted_at.elapsed();
        {
            let mut m = lock(&self.metrics);
            let t = m.tenants.entry(job.tenant.0).or_default();
            t.completed += 1;
            t.latency
                .record(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
        }
        let outcome = JobOutcome {
            tenant: job.tenant,
            cost: job.request.cost(),
            executed: true,
        };
        let _ = job.reply.send(Completed { response, latency });
        outcome
    }

    /// Answer one job with a classified failure and account it. Jobs
    /// that failed *after* executing (a device fault ran their batch)
    /// still earn a transfer share; shed jobs do not.
    fn answer_failed(&self, job: Job, err: ServeError) -> JobOutcome {
        let latency = job.submitted_at.elapsed();
        {
            let mut m = lock(&self.metrics);
            match &err {
                ServeError::DeadlineExceeded => {
                    m.deadline_misses += 1;
                    m.faults.record(FaultClass::Deadline);
                }
                ServeError::Cancelled => m.cancelled += 1,
                ServeError::Fault { .. } => {}
            }
            m.tenants.entry(job.tenant.0).or_default().failed += 1;
        }
        let outcome = JobOutcome {
            tenant: job.tenant,
            cost: job.request.cost(),
            executed: matches!(err, ServeError::Fault { .. }),
        };
        let _ = job.reply.send(Completed {
            response: Response::Failed(err),
            latency,
        });
        outcome
    }

    fn snapshot(&self) -> MetricsSnapshot {
        let m = lock(&self.metrics);
        let q = lock(&self.queue);
        let mut snap = MetricsSnapshot {
            batches: m.batches,
            batched_jobs: m.batched_jobs,
            retries: m.retries,
            faults: m.faults,
            degraded_jobs: m.degraded_jobs,
            deadline_misses: m.deadline_misses,
            cancelled: m.cancelled,
            quarantined: self.ctx.quarantined_count() as u64,
            fallback_evaluators: self.fallback.built(),
            worker_panics: m.worker_panics,
            ..Default::default()
        };
        for (&id, t) in &m.tenants {
            snap.tenants.insert(
                id,
                TenantSnapshot {
                    completed: t.completed,
                    failed: t.failed,
                    rejected: q.rejected_for(TenantId(id)),
                    latency: t.latency.clone(),
                    upload_words: t.upload_words,
                    download_words: t.download_words,
                },
            );
        }
        // Tenants that only ever got rejected still deserve a row.
        for id in q.rejected_tenants() {
            snap.tenants.entry(id).or_insert_with(|| TenantSnapshot {
                rejected: q.rejected_for(TenantId(id)),
                ..Default::default()
            });
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::{cost_share, FallbackPool};

    /// Four degraded dispatches held concurrently get four distinct
    /// evaluators — the single-mutex design this pool replaced would
    /// deadlock here (each thread waits at the barrier while holding
    /// the one evaluator the others need).
    #[test]
    fn fallback_pool_serves_concurrent_checkouts() {
        let primes = he_lite::HeLiteParams {
            log_n: 5,
            prime_bits: 50,
            levels: 2,
            scale_bits: 40,
            gadget_bits: 10,
            error_eta: 4,
        };
        let ring = he_lite::HeContext::new(primes).unwrap().ring().clone();
        let pool = FallbackPool::new();
        let barrier = std::sync::Barrier::new(4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (pool, ring, barrier) = (&pool, &ring, &barrier);
                s.spawn(move || {
                    pool.run(ring, |ev| {
                        // All four checkouts must be live at once.
                        barrier.wait();
                        assert_eq!(ev.ring().degree(), 32);
                    })
                });
            }
        });
        assert_eq!(pool.built(), 4, "each concurrent group got its own");
        // Idle evaluators are reused, not rebuilt.
        pool.run(&ring, |_| {});
        assert_eq!(pool.built(), 4);
    }

    #[test]
    fn transfer_attribution_is_cost_weighted() {
        // One 6-cost encrypt and one 2-cost decrypt share a drain whose
        // delta is 800 words: the encrypt is charged 600, the decrypt
        // 200 — an even split would have billed 400 each.
        assert_eq!(cost_share(800, 6, 8), 600);
        assert_eq!(cost_share(800, 2, 8), 200);
        // Degenerate denominators attribute nothing rather than panic.
        assert_eq!(cost_share(800, 6, 0), 0);
    }
}
