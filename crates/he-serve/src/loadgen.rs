//! Closed- and open-loop multi-tenant load generation.
//!
//! Drives an [`HeServer`](crate::HeServer) the way production traffic
//! would: every tenant runs encrypt → eval → decrypt chains with
//! heavy-tailed value-vector sizes, and the report carries enough
//! counters for the `figures serve` section to plot throughput against
//! tail latency.

use crate::request::{Request, Response, SubmitError, TenantId};
use crate::server::HeServer;
use rand::{Rng, RngExt};
use std::time::{Duration, Instant};

/// How requests arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalMode {
    /// Each tenant keeps exactly one chain in flight (waits for every
    /// answer before the next submit) — latency under light load.
    Closed,
    /// One submitter issues jobs round-robin across tenants with a fixed
    /// inter-arrival gap, collecting answers at the end — pressure on
    /// the queue and batcher.
    Open {
        /// Pause between consecutive submits (zero floods the queue).
        gap: Duration,
    },
}

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Simulated tenants.
    pub tenants: u32,
    /// Encrypt→eval→decrypt chains per tenant.
    pub chains_per_tenant: usize,
    /// Arrival discipline.
    pub mode: ArrivalMode,
    /// Cap on value-vector length (clamped to the ring degree). Actual
    /// lengths are heavy-tailed: length `max >> k` with probability
    /// `2^-(k+1)`, so most requests are small and a few are near-max.
    pub max_values: usize,
    /// Seeds the generator's value/length randomness.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            tenants: 4,
            chains_per_tenant: 4,
            mode: ArrivalMode::Closed,
            max_values: 16,
            seed: 1,
        }
    }
}

/// What a load run did.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Jobs offered to the server (including refused ones).
    pub submitted: u64,
    /// Jobs answered.
    pub completed: u64,
    /// Jobs refused with [`SubmitError::Backpressure`].
    pub rejected: u64,
    /// Decrypted chain results further than `1e-2` from the expected
    /// product (0 on a healthy run).
    pub mismatches: u64,
    /// Wall-clock time from first submit to last answer.
    pub wall: Duration,
}

impl LoadReport {
    /// Answered jobs per wall-clock second.
    pub fn throughput(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.wall.as_secs_f64()
        }
    }
}

/// Heavy-tailed length in `1..=max`: geometric over the trailing-zero
/// count of a uniform draw, so half the requests are `max`-halved once,
/// a quarter twice, and so on.
fn heavy_tail_len<R: Rng>(rng: &mut R, max: usize) -> usize {
    let shift = (rng.next_u64().trailing_zeros() as usize).min(max.ilog2() as usize);
    (max >> shift).max(1)
}

fn chain_values<R: Rng + RngExt>(rng: &mut R, max: usize) -> (Vec<f64>, Vec<f64>) {
    let len = heavy_tail_len(rng, max);
    let values = (0..len).map(|_| rng.random_range(-4.0..4.0)).collect();
    // Constant weight polynomial: under coefficient encoding eval is a
    // negacyclic poly product, and a degree-0 weight scales every value
    // — which keeps the expected chain output checkable in closed form.
    let weights = vec![rng.random_range(-2.0..2.0)];
    (values, weights)
}

/// One encrypt → (eval if a level remains) → decrypt chain, fully
/// synchronous. Returns (submitted, completed, rejected, mismatches).
fn run_chain(
    server: &HeServer,
    values: Vec<f64>,
    weights: Vec<f64>,
    tenant: TenantId,
) -> LoadReport {
    let mut r = LoadReport::default();
    let submit = |req: Request, r: &mut LoadReport| -> Option<Response> {
        r.submitted += 1;
        match server.submit(tenant, req) {
            Ok(ticket) => {
                let done = ticket.wait()?;
                r.completed += 1;
                Some(done.response)
            }
            Err(SubmitError::Backpressure { .. }) => {
                r.rejected += 1;
                None
            }
            Err(_) => None,
        }
    };

    let Some(Response::Encrypted(ct)) = submit(
        Request::Encrypt {
            values: values.clone(),
        },
        &mut r,
    ) else {
        return r;
    };
    let (ct, expect): (_, Vec<f64>) = if ct.level() >= 2 {
        let Some(Response::Evaluated(ct)) = submit(
            Request::Eval {
                ct,
                weights: weights.clone(),
            },
            &mut r,
        ) else {
            return r;
        };
        (ct, values.iter().map(|v| v * weights[0]).collect())
    } else {
        (ct, values)
    };
    let Some(Response::Decrypted(out)) = submit(Request::Decrypt { ct }, &mut r) else {
        return r;
    };
    for (got, want) in out.iter().zip(expect) {
        if (got - want).abs() > 1e-2 {
            r.mismatches += 1;
        }
    }
    r
}

fn merge(into: &mut LoadReport, part: LoadReport) {
    into.submitted += part.submitted;
    into.completed += part.completed;
    into.rejected += part.rejected;
    into.mismatches += part.mismatches;
}

/// Run a load pattern against `server` and report what happened.
///
/// Closed mode spawns one thread per tenant; open mode submits from a
/// single thread and waits for every ticket at the end.
pub fn run(server: &HeServer, cfg: &LoadConfig) -> LoadReport {
    let max = cfg.max_values.clamp(1, server.context().params().n());
    let start = Instant::now();
    let mut report = LoadReport::default();
    match cfg.mode {
        ArrivalMode::Closed => {
            let parts: Vec<LoadReport> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..cfg.tenants)
                    .map(|t| {
                        scope.spawn(move || {
                            let mut part = LoadReport::default();
                            let mut rng =
                                he_lite::sampling::seeded_rng(cfg.seed ^ (u64::from(t) << 17));
                            for _ in 0..cfg.chains_per_tenant {
                                let (values, weights) = chain_values(&mut rng, max);
                                merge(&mut part, run_chain(server, values, weights, TenantId(t)));
                            }
                            part
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("load tenant thread"))
                    .collect()
            });
            for part in parts {
                merge(&mut report, part);
            }
        }
        ArrivalMode::Open { gap } => {
            // Open loop cannot chain (each stage needs the previous
            // answer), so it floods independent encrypt jobs and a
            // decrypt per answered encrypt at the end.
            let mut rng = he_lite::sampling::seeded_rng(cfg.seed);
            let mut tickets = Vec::new();
            for i in 0..(cfg.tenants as usize * cfg.chains_per_tenant) {
                let tenant = TenantId((i % cfg.tenants.max(1) as usize) as u32);
                let (values, _) = chain_values(&mut rng, max);
                report.submitted += 1;
                match server.submit(tenant, Request::Encrypt { values }) {
                    Ok(t) => tickets.push((tenant, t)),
                    Err(SubmitError::Backpressure { .. }) => report.rejected += 1,
                    Err(_) => {}
                }
                if !gap.is_zero() {
                    std::thread::sleep(gap);
                }
            }
            let mut followups = Vec::new();
            for (tenant, ticket) in tickets {
                let Some(done) = ticket.wait() else { continue };
                report.completed += 1;
                if let Response::Encrypted(ct) = done.response {
                    report.submitted += 1;
                    match server.submit(tenant, Request::Decrypt { ct }) {
                        Ok(t) => followups.push(t),
                        Err(SubmitError::Backpressure { .. }) => report.rejected += 1,
                        Err(_) => {}
                    }
                }
            }
            for ticket in followups {
                if ticket.wait().is_some() {
                    report.completed += 1;
                }
            }
        }
    }
    report.wall = start.elapsed();
    report
}
