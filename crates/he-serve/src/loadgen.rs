//! Closed- and open-loop multi-tenant load generation.
//!
//! Drives an [`HeServer`](crate::HeServer) the way production traffic
//! would: every tenant runs encrypt → eval → decrypt chains with
//! heavy-tailed value-vector sizes, and the report carries enough
//! counters for the `figures serve` section to plot throughput against
//! tail latency. Both modes verify decrypted chain outputs against the
//! closed-form expectation and classify every failed job by its
//! [`ServeError`], so a chaos run can assert "bit-correct or typed
//! error" from the client side alone.

use crate::metrics::FaultCounts;
use crate::request::{Request, Response, ServeError, SubmitError, TenantId};
use crate::server::{HeServer, Ticket};
use rand::{Rng, RngExt};
use std::sync::{mpsc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How requests arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalMode {
    /// Each tenant keeps exactly one chain in flight (waits for every
    /// answer before the next submit) — latency under light load.
    Closed,
    /// One submitter paces encrypt submissions round-robin across
    /// tenants with a fixed inter-arrival gap — never waiting on
    /// answers — while a small pool of collector threads completes each
    /// chain (eval → decrypt → verify) as its encrypt answer lands.
    /// Arrival rate stays independent of service rate (a true open
    /// loop), yet every chain still runs end to end.
    Open {
        /// Pause between consecutive submits (zero floods the queue).
        gap: Duration,
    },
}

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Simulated tenants.
    pub tenants: u32,
    /// Encrypt→eval→decrypt chains per tenant.
    pub chains_per_tenant: usize,
    /// Arrival discipline.
    pub mode: ArrivalMode,
    /// Cap on value-vector length (clamped to the ring degree). Actual
    /// lengths are heavy-tailed: length `max >> k` with probability
    /// `2^-(k+1)`, so most requests are small and a few are near-max.
    pub max_values: usize,
    /// Seeds the generator's value/length randomness.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            tenants: 4,
            chains_per_tenant: 4,
            mode: ArrivalMode::Closed,
            max_values: 16,
            seed: 1,
        }
    }
}

/// What a load run did.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Jobs offered to the server (including refused ones).
    pub submitted: u64,
    /// Jobs answered successfully.
    pub completed: u64,
    /// Jobs answered with [`Response::Failed`] — split by class in
    /// [`LoadReport::faults`].
    pub failed: u64,
    /// Jobs refused with [`SubmitError::Backpressure`].
    pub rejected: u64,
    /// Decrypted chain results further than `1e-2` from the expected
    /// product (0 on a healthy run — and, by the fail-classified
    /// contract, 0 on a chaotic one too).
    pub mismatches: u64,
    /// Chains that ran end to end (encrypt through decrypt answered).
    pub chains_completed: u64,
    /// Chains cut short by a rejection or a failed job.
    pub chains_failed: u64,
    /// Client-observed failure classes across all failed jobs.
    pub faults: FaultCounts,
    /// Total retry attempts the server reported in
    /// [`ServeError::Fault`] answers.
    pub reported_retries: u64,
    /// Wall-clock time from first submit to last answer.
    pub wall: Duration,
}

impl LoadReport {
    /// Answered jobs per wall-clock second.
    pub fn throughput(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.wall.as_secs_f64()
        }
    }
}

/// Heavy-tailed length in `1..=max`: geometric over the trailing-zero
/// count of a uniform draw, so half the requests are `max`-halved once,
/// a quarter twice, and so on.
fn heavy_tail_len<R: Rng>(rng: &mut R, max: usize) -> usize {
    let shift = (rng.next_u64().trailing_zeros() as usize).min(max.ilog2() as usize);
    (max >> shift).max(1)
}

fn chain_values<R: Rng + RngExt>(rng: &mut R, max: usize) -> (Vec<f64>, Vec<f64>) {
    let len = heavy_tail_len(rng, max);
    let values = (0..len).map(|_| rng.random_range(-4.0..4.0)).collect();
    // Constant weight polynomial: under coefficient encoding eval is a
    // negacyclic poly product, and a degree-0 weight scales every value
    // — which keeps the expected chain output checkable in closed form.
    let weights = vec![rng.random_range(-2.0..2.0)];
    (values, weights)
}

/// Account one failed answer: counts, class, and server-reported
/// retries.
fn note_failure(r: &mut LoadReport, err: &ServeError) {
    r.failed += 1;
    if let Some(class) = err.fault_class() {
        r.faults.record(class);
    }
    if let ServeError::Fault { retries, .. } = err {
        r.reported_retries += u64::from(*retries);
    }
}

/// Wait on a ticket and account the answer: a success returns the
/// response, a classified failure (or a server teardown) returns `None`.
fn wait_ticket(ticket: Ticket, r: &mut LoadReport) -> Option<Response> {
    let done = ticket.wait()?;
    match done.response {
        Response::Failed(err) => {
            note_failure(r, &err);
            None
        }
        resp => {
            r.completed += 1;
            Some(resp)
        }
    }
}

/// Submit one job and wait for its answer, accounting refusals.
fn submit_and_wait(
    server: &HeServer,
    tenant: TenantId,
    req: Request,
    r: &mut LoadReport,
) -> Option<Response> {
    r.submitted += 1;
    match server.submit(tenant, req) {
        Ok(ticket) => wait_ticket(ticket, r),
        Err(SubmitError::Backpressure { .. }) => {
            r.rejected += 1;
            None
        }
        Err(_) => None,
    }
}

/// Complete a chain whose encrypt already answered: eval (if a level
/// remains to rescale into), decrypt, verify. `Some(())` means the chain
/// ran end to end (mismatches are counted separately).
fn finish_chain(
    server: &HeServer,
    tenant: TenantId,
    ct: he_lite::Ciphertext,
    values: Vec<f64>,
    weights: Vec<f64>,
    r: &mut LoadReport,
) -> Option<()> {
    let (ct, expect): (_, Vec<f64>) = if ct.level() >= 2 {
        let resp = submit_and_wait(
            server,
            tenant,
            Request::Eval {
                ct,
                weights: weights.clone(),
            },
            r,
        )?;
        let Response::Evaluated(ct) = resp else {
            return None;
        };
        (ct, values.iter().map(|v| v * weights[0]).collect())
    } else {
        (ct, values)
    };
    let Response::Decrypted(out) = submit_and_wait(server, tenant, Request::Decrypt { ct }, r)?
    else {
        return None;
    };
    for (got, want) in out.iter().zip(expect) {
        if (got - want).abs() > 1e-2 {
            r.mismatches += 1;
        }
    }
    Some(())
}

/// One encrypt → (eval if a level remains) → decrypt chain, fully
/// synchronous.
fn run_chain(
    server: &HeServer,
    values: Vec<f64>,
    weights: Vec<f64>,
    tenant: TenantId,
) -> LoadReport {
    let mut r = LoadReport::default();
    let outcome = (|| {
        let resp = submit_and_wait(
            server,
            tenant,
            Request::Encrypt {
                values: values.clone(),
            },
            &mut r,
        )?;
        let Response::Encrypted(ct) = resp else {
            return None;
        };
        finish_chain(server, tenant, ct, values, weights, &mut r)
    })();
    match outcome {
        Some(()) => r.chains_completed += 1,
        None => r.chains_failed += 1,
    }
    r
}

fn merge(into: &mut LoadReport, part: LoadReport) {
    into.submitted += part.submitted;
    into.completed += part.completed;
    into.failed += part.failed;
    into.rejected += part.rejected;
    into.mismatches += part.mismatches;
    into.chains_completed += part.chains_completed;
    into.chains_failed += part.chains_failed;
    into.faults.transient += part.faults.transient;
    into.faults.fatal += part.faults.fatal;
    into.faults.oom += part.faults.oom;
    into.faults.deadline += part.faults.deadline;
    into.reported_retries += part.reported_retries;
}

/// Run a load pattern against `server` and report what happened.
///
/// Closed mode spawns one thread per tenant. Open mode submits encrypts
/// from a single pacing thread and hands each ticket to a collector
/// pool that finishes the chain (eval → decrypt → verify) as answers
/// arrive, so submission never blocks on service.
pub fn run(server: &HeServer, cfg: &LoadConfig) -> LoadReport {
    let max = cfg.max_values.clamp(1, server.context().params().n());
    let start = Instant::now();
    let mut report = LoadReport::default();
    match cfg.mode {
        ArrivalMode::Closed => {
            let parts: Vec<LoadReport> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..cfg.tenants)
                    .map(|t| {
                        scope.spawn(move || {
                            let mut part = LoadReport::default();
                            let mut rng =
                                he_lite::sampling::seeded_rng(cfg.seed ^ (u64::from(t) << 17));
                            for _ in 0..cfg.chains_per_tenant {
                                let (values, weights) = chain_values(&mut rng, max);
                                merge(&mut part, run_chain(server, values, weights, TenantId(t)));
                            }
                            part
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("load tenant thread"))
                    .collect()
            });
            for part in parts {
                merge(&mut report, part);
            }
        }
        ArrivalMode::Open { gap } => {
            let total = cfg.tenants.max(1) as usize * cfg.chains_per_tenant;
            let mut rng = he_lite::sampling::seeded_rng(cfg.seed);
            let chains: Vec<(TenantId, Vec<f64>, Vec<f64>)> = (0..total)
                .map(|i| {
                    let tenant = TenantId((i % cfg.tenants.max(1) as usize) as u32);
                    let (values, weights) = chain_values(&mut rng, max);
                    (tenant, values, weights)
                })
                .collect();

            type ChainMsg = (TenantId, Ticket, Vec<f64>, Vec<f64>);
            let (tx, rx) = mpsc::channel::<ChainMsg>();
            let rx = Mutex::new(rx);
            let collectors = total.clamp(1, 4);
            let parts: Vec<LoadReport> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..collectors)
                    .map(|_| {
                        let rx = &rx;
                        scope.spawn(move || {
                            let mut part = LoadReport::default();
                            loop {
                                // Hold the receiver lock only for the
                                // recv, not across the chain.
                                let msg = rx.lock().unwrap_or_else(PoisonError::into_inner).recv();
                                let Ok((tenant, ticket, values, weights)) = msg else {
                                    break;
                                };
                                let done = match wait_ticket(ticket, &mut part) {
                                    Some(Response::Encrypted(ct)) => {
                                        finish_chain(server, tenant, ct, values, weights, &mut part)
                                    }
                                    _ => None,
                                };
                                match done {
                                    Some(()) => part.chains_completed += 1,
                                    None => part.chains_failed += 1,
                                }
                            }
                            part
                        })
                    })
                    .collect();

                let mut sub = LoadReport::default();
                for (tenant, values, weights) in chains {
                    sub.submitted += 1;
                    match server.submit(
                        tenant,
                        Request::Encrypt {
                            values: values.clone(),
                        },
                    ) {
                        Ok(ticket) => {
                            // The collectors only stop when the channel
                            // closes, so a send cannot fail.
                            let _ = tx.send((tenant, ticket, values, weights));
                        }
                        Err(SubmitError::Backpressure { .. }) => {
                            sub.rejected += 1;
                            sub.chains_failed += 1;
                        }
                        Err(_) => sub.chains_failed += 1,
                    }
                    if !gap.is_zero() {
                        std::thread::sleep(gap);
                    }
                }
                drop(tx);
                let mut parts: Vec<LoadReport> = handles
                    .into_iter()
                    .map(|h| h.join().expect("load collector thread"))
                    .collect();
                parts.push(sub);
                parts
            });
            for part in parts {
                merge(&mut report, part);
            }
        }
    }
    report.wall = start.elapsed();
    report
}
