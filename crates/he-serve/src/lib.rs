//! HE-as-a-service: a multi-tenant request-serving front end over the
//! [`he_lite`] evaluator pool.
//!
//! The paper motivates GPU NTT acceleration by the throughput demands of
//! bootstrappable HE workloads; this crate is the workload layer that
//! *drives* the evaluator pool and stream scheduler like production
//! traffic does. Many simulated tenants submit encrypt / eval / decrypt
//! jobs; the server answers them through four cooperating pieces:
//!
//! * **[`FairQueue`]** — per-tenant bounded queues with deficit
//!   round-robin scheduling. Admission control rejects (and counts) jobs
//!   past a tenant's queue capacity, so a flooding tenant gets
//!   backpressure instead of unbounded memory, and a quiet tenant's jobs
//!   never starve behind the flood.
//! * **[`batcher`]** — packs every job in a dispatch group into *single*
//!   flat backend calls (`forward_flat` / `pointwise_flat` /
//!   `inverse_flat`), so `k` small ciphertext ops cost one kernel
//!   schedule and one staging round-trip instead of `k`. Results are
//!   bit-identical to per-job dispatch by construction: NTT and
//!   pointwise rows are independent, and everything else is exact host
//!   arithmetic.
//! * **[`HeServer`]** — worker threads draining the queue into the
//!   batcher through [`he_lite::HeContext::with_pooled_evaluator`], with
//!   per-tenant latency histograms and cost-weighted transfer
//!   attribution ([`metrics`]).
//! * **[`loadgen`]** — a closed/open-loop load generator with
//!   heavy-tailed request sizes, feeding the `figures serve` section.
//!   Open mode paces submissions independently of service and completes
//!   every chain through a collector pool, recording per-chain fault
//!   and retry outcomes.
//!
//! # Self-healing dispatch
//!
//! The serving loop is written against the fallible backend surface
//! ([`ntt_core::backend::BackendError`]) and survives an unreliable
//! device:
//!
//! * **Bounded retry** — transient faults are retried under
//!   [`RetryPolicy`] (exponential backoff, deterministic jitter, capped
//!   by the tightest live deadline).
//! * **Quarantine** — a fatal/OOM fault drops the pooled evaluator that
//!   observed it and re-forks a replacement
//!   ([`he_lite::HeContext::try_with_pooled_evaluator`]), so no later
//!   dispatch inherits a wedged executor.
//! * **Degradation** — a group whose device budget is exhausted re-runs
//!   on a host/CPU evaluator with bit-identical results; a fatal fault
//!   marks the device down so later groups skip it entirely.
//! * **Deadlines & cancellation** — [`ServeConfig::deadline`] bounds
//!   queue-to-answer time; [`Ticket::cancel`] drops a queued job. Both
//!   answer [`ServeError`] variants, never silence.
//!
//! Every admitted job is answered exactly once: a success, or a
//! [`Response::Failed`] carrying a classified [`ServeError`] — the
//! server never returns a silently wrong result, and all of the above
//! is visible in [`MetricsSnapshot`].
//!
//! # Example
//!
//! ```
//! use he_lite::{HeContext, HeLiteParams};
//! use he_serve::{HeServer, Request, Response, ServeConfig, TenantId};
//!
//! let ctx = HeContext::new(HeLiteParams {
//!     log_n: 5, prime_bits: 50, levels: 2, scale_bits: 40,
//!     gadget_bits: 10, error_eta: 4,
//! })?;
//! let server = HeServer::start(ctx, ServeConfig::default());
//! let tenant = TenantId(1);
//!
//! let ticket = server
//!     .submit(tenant, Request::Encrypt { values: vec![1.5, -2.0] })
//!     .expect("queue has room");
//! let ct = match ticket.wait().expect("server answers").response {
//!     Response::Encrypted(ct) => ct,
//!     _ => unreachable!(),
//! };
//!
//! let ticket = server.submit(tenant, Request::Decrypt { ct }).unwrap();
//! let Response::Decrypted(values) = ticket.wait().unwrap().response else {
//!     unreachable!()
//! };
//! assert!((values[0] - 1.5).abs() < 1e-3);
//! server.shutdown();
//! # Ok::<(), he_lite::HeError>(())
//! ```

pub mod batcher;
pub mod loadgen;
pub mod metrics;
pub mod queue;
pub mod request;
pub mod server;

pub use batcher::{job_seed, Batcher, EncryptJob};
pub use he_boot::{BootParams, Bootstrapper};
pub use loadgen::{ArrivalMode, LoadConfig, LoadReport};
pub use metrics::{FaultCounts, LatencyHistogram, MetricsSnapshot, TenantSnapshot};
pub use ntt_core::backend::{BackendError, FaultClass};
pub use queue::{FairQueue, Weighted};
pub use request::{Completed, Request, Response, ServeError, SubmitError, TenantId};
pub use server::{HeServer, RetryPolicy, ServeConfig, Ticket};
